//! Buddy Compression — full reproduction of Choukse et al., *"Buddy
//! Compression: Enabling Larger Memory for Deep Learning and HPC Workloads
//! on GPUs"* (ISCA 2020), in Rust.
//!
//! This facade crate re-exports the component crates and provides the glue
//! that the paper's evaluation pipeline needs:
//!
//! 1. [`workloads`] — synthetic versions of the 16 evaluated benchmarks
//!    (memory images with controlled BPC compressibility + access traces),
//! 2. [`bpc`] — Bit-Plane Compression and baseline compressors,
//! 3. [`buddy_core`] — the Buddy Compression design: target ratios,
//!    metadata, the profiling pass, a functional compressed device with
//!    live target-ratio migration, and the online re-targeting policy
//!    ([`buddy_core::adapt`]),
//! 4. [`gpu_sim`] — the dependency-driven performance simulator (Table 2),
//! 5. [`unified_memory`] — the UM oversubscription model (Figure 12),
//! 6. [`dl_model`] — the DL training case study (Figure 13),
//! 7. [`buddy_pool`] — a sharded, thread-safe pool of `BuddyDevice`s with a
//!    concurrent trace-replay load harness (multi-tenant scaling),
//! 8. [`buddy_service`] — the multi-tenant service layer over the pool:
//!    per-tenant quotas, admission control (reject or demote down the
//!    target-ratio ladder), ownership-checked generational handles,
//!    lock-free telemetry, and an open-loop overload harness,
//! 9. [`buddy_obs`] — the observability layer: lock-free latency
//!    histograms, the feature-gated (`obs-trace`) span tracer with
//!    Chrome-trace export, and the metrics registry with
//!    Prometheus-text rendering and time-series sampling.
//!
//! The glue items here ([`profile_benchmark`], [`BenchmarkLayout`],
//! [`benchmark_requests`], [`run_performance_sim`]) connect a workload to
//! the profiler and the simulator — the full §3.5 flow: profile on
//! snapshots, choose per-allocation targets under the Buddy Threshold, then
//! run with compression enabled.
//!
//! # Quickstart
//!
//! ```
//! use buddy_compression::{profile_benchmark, ProfileConfig};
//! use buddy_compression::buddy_core::choose_targets;
//!
//! let mut bench = buddy_compression::workloads::by_name("356.sp").unwrap();
//! bench.scale = buddy_compression::workloads::Scale::test();
//! let profiles = profile_benchmark(&bench, 4096, 0xB0DD7);
//! let outcome = choose_targets(&profiles, &ProfileConfig::default());
//! assert!(outcome.device_compression_ratio() > 1.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bpc;
pub use buddy_core;
pub use buddy_obs;
pub use buddy_pool;
pub use buddy_service;
pub use dl_model;
pub use gpu_sim;
pub use unified_memory;
pub use workloads;

pub use buddy_core::{ProfileConfig, ProfileOutcome, TargetRatio};

use bpc::CodecKind;
use buddy_core::AllocationProfile;
use gpu_sim::{EntryPlacement, MemRequest, MemoryLayout, SimStats};
use workloads::snapshot::{capture, ten_phases, SnapshotConfig};
use workloads::Benchmark;

/// Runs the paper's profiling pass over a benchmark: ten memory snapshots
/// across the run compressed with BPC, merged into one per-allocation
/// size-class histogram. Shorthand for [`profile_benchmark_with`] with
/// [`CodecKind::Bpc`].
///
/// `sample_cap` bounds the entries compressed per allocation per snapshot
/// (uniform sampling; the generators are stationary so this is unbiased).
///
/// # Panics
///
/// Panics if any snapshot reports a different allocation list than the
/// first one: merging histograms positionally is only meaningful when all
/// ten phases cover the same allocations, so a mismatch fails loudly
/// instead of silently truncating the `zip`.
pub fn profile_benchmark(bench: &Benchmark, sample_cap: u64, seed: u64) -> Vec<AllocationProfile> {
    profile_benchmark_with(bench, CodecKind::Bpc, sample_cap, seed)
}

/// [`profile_benchmark`] under an arbitrary codec — the §2.4 ablation runs
/// the whole profile → target-choice flow per algorithm through this.
///
/// # Panics
///
/// As [`profile_benchmark`].
pub fn profile_benchmark_with(
    bench: &Benchmark,
    codec: CodecKind,
    sample_cap: u64,
    seed: u64,
) -> Vec<AllocationProfile> {
    let mut merged: Vec<AllocationProfile> = Vec::new();
    let mut first = true;
    for phase in ten_phases() {
        let stats = capture(
            bench,
            SnapshotConfig {
                phase,
                seed,
                sample_cap,
                codec,
            },
        );
        if first {
            first = false;
            merged = stats
                .allocations
                .iter()
                .map(|a| AllocationProfile {
                    name: a.name.to_owned(),
                    entries: a.entries,
                    histogram: a.histogram.clone(),
                })
                .collect();
        } else {
            assert_eq!(
                merged.len(),
                stats.allocations.len(),
                "snapshot of {} at phase {phase} covers {} allocations, but an \
                 earlier snapshot covered {}; every phase must report the same \
                 allocation list for positional histogram merging",
                bench.name,
                stats.allocations.len(),
                merged.len(),
            );
            for (profile, alloc) in merged.iter_mut().zip(stats.allocations.iter()) {
                assert_eq!(
                    profile.name, alloc.name,
                    "snapshot of {} at phase {phase} reordered its allocation \
                     list; positional histogram merging would corrupt profiles",
                    bench.name,
                );
                profile.histogram.merge(&alloc.histogram);
            }
        }
    }
    merged
}

/// Profiles a benchmark at a single phase (used by the Figure 8 temporal
/// study, which holds targets fixed while the data evolves). Shorthand for
/// [`profile_benchmark_at_with`] with [`CodecKind::Bpc`].
pub fn profile_benchmark_at(
    bench: &Benchmark,
    phase: f64,
    sample_cap: u64,
    seed: u64,
) -> Vec<AllocationProfile> {
    profile_benchmark_at_with(bench, CodecKind::Bpc, phase, sample_cap, seed)
}

/// [`profile_benchmark_at`] under an arbitrary codec.
pub fn profile_benchmark_at_with(
    bench: &Benchmark,
    codec: CodecKind,
    phase: f64,
    sample_cap: u64,
    seed: u64,
) -> Vec<AllocationProfile> {
    let stats = capture(
        bench,
        SnapshotConfig {
            phase,
            seed,
            sample_cap,
            codec,
        },
    );
    stats
        .allocations
        .iter()
        .map(|a| AllocationProfile {
            name: a.name.to_owned(),
            entries: a.entries,
            histogram: a.histogram.clone(),
        })
        .collect()
}

/// A [`gpu_sim::MemoryLayout`] oracle over a benchmark's synthetic memory
/// image and a set of profiler target choices.
///
/// Per-entry compressed sizes come from the entry's *nominal* size class
/// (the class its generator targets, ≥90% accurate per the workloads
/// tests) so the simulator can query placements in O(1) per miss without
/// running the compressor.
#[derive(Debug)]
pub struct BenchmarkLayout {
    /// (end_entry_exclusive, alloc_index) ranges in entry order.
    ranges: Vec<(u64, usize)>,
    allocations: Vec<LayoutAllocation>,
    total_entries: u64,
    phase: f64,
}

#[derive(Debug)]
struct LayoutAllocation {
    spec: workloads::AllocationSpec,
    target: TargetRatio,
    alloc_seed: u64,
}

impl BenchmarkLayout {
    /// Builds the layout for `bench` with the profiler's `outcome` at an
    /// execution phase.
    ///
    /// # Panics
    ///
    /// Panics if `outcome` has a different number of choices than the
    /// benchmark has allocations.
    pub fn new(bench: &Benchmark, outcome: &ProfileOutcome, phase: f64, seed: u64) -> Self {
        let layout = bench.allocation_layout();
        assert_eq!(
            layout.len(),
            outcome.choices.len(),
            "profile outcome must cover every allocation"
        );
        let mut ranges = Vec::with_capacity(layout.len());
        let mut allocations = Vec::with_capacity(layout.len());
        let mut cursor = 0u64;
        for (idx, ((spec, entries), choice)) in
            layout.iter().zip(outcome.choices.iter()).enumerate()
        {
            cursor += entries;
            ranges.push((cursor, idx));
            allocations.push(LayoutAllocation {
                spec: (*spec).clone(),
                target: choice.target,
                alloc_seed: workloads::entry_gen::mix(&[seed, idx as u64]),
            });
        }
        Self {
            ranges,
            allocations,
            total_entries: cursor,
            phase,
        }
    }

    /// An uncompressed layout (every entry 4 sectors, no buddy) for the
    /// ideal-baseline runs.
    pub fn uncompressed(bench: &Benchmark) -> gpu_sim::UniformLayout {
        gpu_sim::UniformLayout {
            entries: bench.total_entries(),
            placement: EntryPlacement::device(4),
        }
    }

    fn locate(&self, entry: u64) -> (usize, u64) {
        assert!(
            !self.allocations.is_empty(),
            "cannot locate entry {entry}: this layout was built from a \
             benchmark with zero allocations"
        );
        let idx = self.ranges.partition_point(|&(end, _)| end <= entry);
        let idx = idx.min(self.allocations.len() - 1);
        let start = if idx == 0 { 0 } else { self.ranges[idx - 1].0 };
        (idx, entry.saturating_sub(start))
    }

    /// The nominal size class of an entry (without compressing).
    pub fn size_class(&self, entry: u64) -> bpc::SizeClass {
        let (idx, local) = self.locate(entry);
        let alloc = &self.allocations[idx];
        alloc
            .spec
            .class_at(alloc.alloc_seed, local, self.phase)
            .nominal_size_class()
    }

    /// The target ratio governing an entry.
    pub fn target_of(&self, entry: u64) -> TargetRatio {
        let (idx, _) = self.locate(entry);
        self.allocations[idx].target
    }
}

/// Translates a (size class, target ratio) pair into a sector placement,
/// mirroring `buddy_core`'s storage rules.
pub fn placement_for(class: bpc::SizeClass, target: TargetRatio) -> EntryPlacement {
    use bpc::SizeClass::B0;
    if class == B0 {
        return EntryPlacement {
            device_sectors: 0,
            buddy_sectors: 0,
        };
    }
    match target {
        TargetRatio::ZeroPage16 => {
            if class.bytes() <= 8 {
                // The 8 B granule costs one sector access.
                EntryPlacement {
                    device_sectors: 1,
                    buddy_sectors: 0,
                }
            } else {
                // Overflowed zero-page entries live raw in the buddy slot.
                EntryPlacement {
                    device_sectors: 0,
                    buddy_sectors: 4,
                }
            }
        }
        other => {
            let sectors = class.sectors().max(1);
            let budget = other.device_sectors();
            EntryPlacement {
                device_sectors: sectors.min(budget),
                buddy_sectors: sectors.saturating_sub(budget),
            }
        }
    }
}

impl MemoryLayout for BenchmarkLayout {
    fn total_entries(&self) -> u64 {
        self.total_entries
    }

    fn placement(&self, entry: u64) -> EntryPlacement {
        placement_for(self.size_class(entry), self.target_of(entry))
    }

    fn compressed_sectors(&self, entry: u64) -> u8 {
        let class = self.size_class(entry);
        if class == bpc::SizeClass::B0 {
            0
        } else {
            class.sectors().max(1)
        }
    }
}

/// Adapts a workload access trace into simulator requests.
pub fn benchmark_requests(bench: &Benchmark, seed: u64) -> impl Iterator<Item = MemRequest> {
    bench.trace(seed).map(|a| MemRequest {
        entry: a.entry,
        sector_mask: a.sector_mask,
        write: a.write,
        to_host: a.to_host,
    })
}

/// End-to-end performance run: profile → choose targets → simulate.
///
/// Returns `(stats, outcome)` so callers can report both performance and
/// compression results.
pub fn run_performance_sim(
    bench: &Benchmark,
    mode: gpu_sim::MemoryMode,
    gpu: gpu_sim::GpuConfig,
    accesses: u64,
    seed: u64,
) -> (SimStats, ProfileOutcome) {
    let profiles = profile_benchmark(bench, 2048, seed);
    let outcome = buddy_core::choose_targets(&profiles, &ProfileConfig::default());
    let exec = gpu_sim::ExecConfig::from_profile(
        &gpu,
        bench.access.mlp,
        bench.access.compute_per_access as f64,
        accesses,
    );
    let stats = match mode {
        gpu_sim::MemoryMode::Uncompressed => {
            let layout = BenchmarkLayout::uncompressed(bench);
            gpu_sim::Engine::new(gpu, exec, mode, gpu_sim::Fidelity::Fast, &layout)
                .run(&mut benchmark_requests(bench, seed))
        }
        _ => {
            let layout = BenchmarkLayout::new(bench, &outcome, 0.5, seed);
            gpu_sim::Engine::new(gpu, exec, mode, gpu_sim::Fidelity::Fast, &layout)
                .run(&mut benchmark_requests(bench, seed))
        }
    };
    (stats, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bench(name: &str) -> Benchmark {
        let mut b = workloads::by_name(name).expect("benchmark exists");
        b.scale = workloads::Scale::test();
        b
    }

    #[test]
    fn profiling_produces_one_profile_per_allocation() {
        let bench = test_bench("351.palm");
        let profiles = profile_benchmark(&bench, 512, 1);
        assert_eq!(profiles.len(), bench.allocations.len());
        assert!(profiles.iter().all(|p| p.histogram.total() > 0));
    }

    #[test]
    fn seismic_profiles_conservatively_to_2x() {
        // §3.4: "for 355.seismic, for most allocations, the target ratio
        // used will be 2x, and not 7x or 6x" — profiling across all ten
        // snapshots sees the late, less-compressible data.
        let bench = test_bench("355.seismic");
        let profiles = profile_benchmark(&bench, 2048, 2);
        let outcome = buddy_core::choose_targets(&profiles, &ProfileConfig::default());
        let wavefield = outcome
            .choices
            .iter()
            .find(|c| c.name == "wavefield")
            .expect("wavefield allocation");
        assert_eq!(wavefield.target, TargetRatio::R2);
    }

    #[test]
    fn layout_placements_respect_targets() {
        let bench = test_bench("354.cg");
        let profiles = profile_benchmark(&bench, 1024, 3);
        let outcome = buddy_core::choose_targets(&profiles, &ProfileConfig::default());
        let layout = BenchmarkLayout::new(&bench, &outcome, 0.5, 3);
        for entry in (0..layout.total_entries()).step_by(997) {
            let p = layout.placement(entry);
            let target = layout.target_of(entry);
            match target {
                TargetRatio::ZeroPage16 => {}
                t => assert!(
                    p.device_sectors <= t.device_sectors(),
                    "device sectors exceed budget at {entry}"
                ),
            }
            assert!(p.total() <= 4);
        }
    }

    #[test]
    fn placement_rules_match_buddy_core() {
        use bpc::SizeClass::*;
        // Fits: fully device-resident.
        let p = placement_for(B32, TargetRatio::R2);
        assert_eq!((p.device_sectors, p.buddy_sectors), (1, 0));
        // Overflows: split at the budget.
        let p = placement_for(B128, TargetRatio::R2);
        assert_eq!((p.device_sectors, p.buddy_sectors), (2, 2));
        let p = placement_for(B96, TargetRatio::R4);
        assert_eq!((p.device_sectors, p.buddy_sectors), (1, 2));
        // Zero entries are free.
        let p = placement_for(B0, TargetRatio::R4);
        assert_eq!((p.device_sectors, p.buddy_sectors), (0, 0));
        // Zero-page fit and overflow.
        let p = placement_for(B8, TargetRatio::ZeroPage16);
        assert_eq!((p.device_sectors, p.buddy_sectors), (1, 0));
        let p = placement_for(B64, TargetRatio::ZeroPage16);
        assert_eq!((p.device_sectors, p.buddy_sectors), (0, 4));
    }

    #[test]
    fn end_to_end_sim_runs_for_buddy_and_baseline() {
        let bench = test_bench("356.sp");
        let gpu = gpu_sim::GpuConfig::p100();
        let (base, _) =
            run_performance_sim(&bench, gpu_sim::MemoryMode::Uncompressed, gpu, 20_000, 5);
        let (buddy, outcome) =
            run_performance_sim(&bench, gpu_sim::MemoryMode::Buddy, gpu, 20_000, 5);
        assert_eq!(base.accesses, 20_000);
        assert_eq!(buddy.accesses, 20_000);
        assert!(outcome.device_compression_ratio() > 1.0);
        // Compression should be within a sane band of the baseline.
        let speedup = buddy.speedup_vs(&base);
        assert!((0.5..2.0).contains(&speedup), "sp speedup {speedup:.2}");
    }

    #[test]
    #[should_panic(expected = "zero allocations")]
    fn empty_layout_locate_panics_with_message() {
        // A benchmark stripped of its allocations produces an empty layout;
        // querying it must fail with a clear message, not a usize underflow.
        let mut bench = test_bench("356.sp");
        bench.allocations.clear();
        let outcome = ProfileOutcome {
            choices: Vec::new(),
        };
        let layout = BenchmarkLayout::new(&bench, &outcome, 0.5, 1);
        let _ = layout.placement(0);
    }

    #[test]
    fn profiling_empty_benchmark_yields_no_profiles() {
        // The ten-phase merge must not fabricate profiles for a benchmark
        // with no allocations (each phase legitimately reports none).
        let mut bench = test_bench("356.sp");
        bench.allocations.clear();
        assert!(profile_benchmark(&bench, 128, 1).is_empty());
    }

    #[test]
    fn hpgmg_keeps_striped_allocation_uncompressed() {
        let bench = test_bench("FF_HPGMG");
        let profiles = profile_benchmark(&bench, 2048, 7);
        let outcome = buddy_core::choose_targets(&profiles, &ProfileConfig::default());
        let structs = outcome
            .choices
            .iter()
            .find(|c| c.name == "level_structs")
            .expect("level_structs allocation");
        assert_eq!(
            structs.target,
            TargetRatio::R1,
            "the striped struct array needs >80% threshold (§3.4)"
        );
    }
}
