//! A sectored, set-associative cache model used for both the shared L2 and
//! the per-slice metadata caches.
//!
//! The L2 follows the paper's description (§4.1): 128 B lines divided into
//! 32 B sectors, banked/sliced, LRU within a set. Sector valid bits let the
//! uncompressed baseline fill individual sectors while the compressed
//! configurations always fill whole lines (compression granularity).

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present with every requested sector valid.
    Hit,
    /// Line present but some requested sectors missing (sector miss).
    Partial {
        /// The requested sectors that are not valid.
        missing: u8,
    },
    /// Line absent entirely.
    Miss,
}

/// A dirty line pushed out by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Line tag (the caller's line address).
    pub tag: u64,
    /// Dirty sectors that must be written back.
    pub dirty_mask: u8,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u64,
    valid_mask: u8,
    dirty_mask: u8,
    last_use: u64,
}

/// Set-associative sectored cache with LRU replacement.
#[derive(Debug, Clone)]
pub struct SectoredCache {
    sets: Vec<Vec<Slot>>,
    ways: usize,
    tick: u64,
    hits: u64,
    partial_hits: u64,
    misses: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SectoredCache {
    /// Creates a cache with `lines` total lines and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero, `ways` is zero, or `ways` exceeds `lines`.
    pub fn new(lines: usize, ways: usize) -> Self {
        assert!(lines > 0 && ways > 0, "cache must have lines and ways");
        assert!(ways <= lines, "ways cannot exceed total lines");
        let sets = (lines / ways).max(1);
        Self {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            tick: 0,
            hits: 0,
            partial_hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, tag: u64) -> usize {
        (splitmix64(tag) % self.sets.len() as u64) as usize
    }

    /// Looks up `tag` asking for the sectors in `mask`; updates LRU and hit
    /// statistics.
    pub fn lookup(&mut self, tag: u64, mask: u8) -> Lookup {
        self.tick += 1;
        let set = self.set_of(tag);
        for slot in &mut self.sets[set] {
            if slot.tag == tag {
                slot.last_use = self.tick;
                let missing = mask & !slot.valid_mask;
                return if missing == 0 {
                    self.hits += 1;
                    Lookup::Hit
                } else {
                    self.partial_hits += 1;
                    Lookup::Partial { missing }
                };
            }
        }
        self.misses += 1;
        Lookup::Miss
    }

    /// Inserts (or merges) sectors for `tag`, optionally marking them dirty.
    /// Returns the evicted dirty line, if the fill displaced one.
    pub fn fill(&mut self, tag: u64, mask: u8, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set_idx = self.set_of(tag);
        let set = &mut self.sets[set_idx];
        if let Some(slot) = set.iter_mut().find(|s| s.tag == tag) {
            slot.valid_mask |= mask;
            if dirty {
                slot.dirty_mask |= mask;
            }
            slot.last_use = tick;
            return None;
        }
        let new_slot = Slot {
            tag,
            valid_mask: mask,
            dirty_mask: if dirty { mask } else { 0 },
            last_use: tick,
        };
        if set.len() < ways {
            set.push(new_slot);
            return None;
        }
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.last_use)
            .map(|(i, _)| i)
            .expect("set is full, victim exists"); // lint-allow(no-unwrap): the set was just checked to be full
        let victim = std::mem::replace(&mut set[victim_idx], new_slot);
        if victim.dirty_mask != 0 {
            Some(Eviction {
                tag: victim.tag,
                dirty_mask: victim.dirty_mask,
            })
        } else {
            None
        }
    }

    /// Marks sectors of a resident line dirty (store hit). No-op if absent.
    ///
    /// **Invariant: fill before mark.** The engine only marks sectors it
    /// has already made valid (a write hit marks requested sectors that the
    /// hit proved valid; a write miss/partial [`fill`](Self::fill)s first —
    /// the full line under compression, the written sectors uncompressed).
    /// Dirtiness for a not-yet-resident sector would otherwise be dropped
    /// by the `valid_mask` intersection below and the store silently lost
    /// at eviction, so the intersection is a release-mode backstop, not a
    /// semantic: marking an invalid sector is a caller bug, and debug
    /// builds assert it.
    pub fn mark_dirty(&mut self, tag: u64, mask: u8) {
        let set = self.set_of(tag);
        if let Some(slot) = self.sets[set].iter_mut().find(|s| s.tag == tag) {
            debug_assert_eq!(
                mask & !slot.valid_mask,
                0,
                "fill before mark: marking sectors {:#06b} of line {tag} dirty, \
                 but only {:#06b} are valid",
                mask,
                slot.valid_mask
            );
            slot.dirty_mask |= mask & slot.valid_mask;
        }
    }

    /// (hits, partial hits, misses) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.partial_hits, self.misses)
    }

    /// Hit rate counting partial hits as misses (conservative).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.partial_hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Clears the statistics counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.partial_hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SectoredCache::new(64, 4);
        assert_eq!(c.lookup(42, 0b1111), Lookup::Miss);
        c.fill(42, 0b1111, false);
        assert_eq!(c.lookup(42, 0b0110), Lookup::Hit);
    }

    #[test]
    fn sector_miss_reports_missing() {
        let mut c = SectoredCache::new(64, 4);
        c.fill(42, 0b0011, false);
        assert_eq!(c.lookup(42, 0b0111), Lookup::Partial { missing: 0b0100 });
        // Fill the missing sector: now a full hit.
        c.fill(42, 0b0100, false);
        assert_eq!(c.lookup(42, 0b0111), Lookup::Hit);
    }

    #[test]
    fn lru_evicts_oldest_and_reports_dirty() {
        let mut c = SectoredCache::new(2, 2); // one set, two ways
        assert!(c.fill(1, 0b1111, true).is_none());
        assert!(c.fill(2, 0b1111, false).is_none());
        // Touch line 1 so line 2 is LRU.
        assert_eq!(c.lookup(1, 0b0001), Lookup::Hit);
        let evicted = c.fill(3, 0b1111, false);
        assert_eq!(evicted, None, "line 2 was clean");
        // Now 1 (dirty) is LRU after touching 3.
        assert_eq!(c.lookup(3, 0b0001), Lookup::Hit);
        let evicted = c.fill(4, 0b1111, false);
        assert_eq!(
            evicted,
            Some(Eviction {
                tag: 1,
                dirty_mask: 0b1111
            })
        );
    }

    #[test]
    fn mark_dirty_records_exactly_the_marked_valid_sectors() {
        // Fill two sectors, dirty one of them, and observe the dirty mask
        // through an eviction (1-set cache so capacity pressure evicts).
        let mut c1 = SectoredCache::new(2, 2);
        c1.fill(9, 0b0011, false);
        c1.mark_dirty(9, 0b0001);
        c1.fill(10, 0b1111, false);
        c1.lookup(10, 1);
        let ev = c1.fill(11, 0b1111, false);
        assert_eq!(
            ev,
            Some(Eviction {
                tag: 9,
                dirty_mask: 0b0001
            })
        );
        // Marking an absent line is a silent no-op (the store went
        // elsewhere), not an error.
        let mut c2 = SectoredCache::new(4, 2);
        c2.mark_dirty(77, 0b1111);
        assert_eq!(c2.stats(), (0, 0, 0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "fill before mark")]
    fn marking_unfilled_sectors_is_a_caller_bug() {
        // The engine's invariant: dirtiness may only be recorded for
        // sectors the cache already holds — marking a not-yet-filled
        // sector would silently drop the store at eviction time.
        let mut c = SectoredCache::new(4, 2);
        c.fill(9, 0b0011, false);
        c.mark_dirty(9, 0b1111);
    }

    #[test]
    fn hit_rate_accounting() {
        let mut c = SectoredCache::new(16, 4);
        c.fill(1, 0b1111, false);
        c.lookup(1, 0b1111); // hit
        c.lookup(2, 0b0001); // miss
        c.lookup(1, 0b1111); // hit
        let (h, p, m) = c.stats();
        assert_eq!((h, p, m), (2, 0, 1));
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats(), (0, 0, 0));
    }

    #[test]
    fn capacity_behavior_streaming_vs_reuse() {
        // Streaming through 4x the capacity yields ~0% reuse hits.
        let mut c = SectoredCache::new(256, 8);
        for tag in 0..1024u64 {
            c.lookup(tag, 0b1111);
            c.fill(tag, 0b1111, false);
        }
        let (h, _, _) = c.stats();
        assert_eq!(h, 0);
        // Re-walking a small working set hits every time.
        let mut c = SectoredCache::new(256, 8);
        for round in 0..4 {
            for tag in 0..64u64 {
                let res = c.lookup(tag, 0b1111);
                if round == 0 {
                    assert_eq!(res, Lookup::Miss);
                    c.fill(tag, 0b1111, false);
                } else {
                    assert_eq!(res, Lookup::Hit, "round {round} tag {tag}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ways cannot exceed")]
    fn invalid_geometry_panics() {
        SectoredCache::new(2, 4);
    }
}
