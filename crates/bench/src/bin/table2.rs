//! Regenerates the paper's table2 (see DESIGN.md §5). Pass --quick for a smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::tables::table2(&cfg)?;
    Ok(())
}
