//! Synthetic GPU workload suite for the Buddy Compression reproduction.
//!
//! The paper evaluates Buddy Compression on 16 workloads (Table 1): eight
//! SpecAccel HPC benchmarks, two DOE FastForward proxy apps, and six
//! deep-learning training workloads. The original evaluation used memory
//! dumps and instruction traces captured from real GPUs; neither is
//! available here, so this crate synthesizes both:
//!
//! * **Memory images** ([`snapshot`]) — per-allocation mixtures of entry
//!   generators ([`entry_gen`]) whose *measured* Bit-Plane-Compression size
//!   classes are predictable, arranged with the spatial patterns of
//!   Figure 6 ([`spec`]) and the temporal behaviour of §3.1/Figure 8.
//! * **Access traces** ([`trace`]) — deterministic streams with the
//!   coalescing, locality, read/write and host-traffic statistics the paper
//!   reports per benchmark.
//!
//! Everything is seeded and deterministic: two runs with the same seed
//! produce bit-identical figures.
//!
//! # Example
//!
//! ```
//! use workloads::{by_name, snapshot};
//!
//! let mut bench = by_name("352.ep").expect("known benchmark");
//! bench.scale = workloads::Scale::test();
//! let stats = snapshot::capture(
//!     &bench,
//!     snapshot::SnapshotConfig {
//!         phase: 0.5,
//!         seed: 1,
//!         sample_cap: 2048,
//!         ..Default::default() // codec: BPC, as the paper profiles
//!     },
//! );
//! // 352.ep is dominated by zero pages: ratio is far above 2x.
//! assert!(stats.compression_ratio() > 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod churn;
pub mod drift;
pub mod entry_gen;
pub mod snapshot;
pub mod spec;
pub mod suite;
pub mod trace;

pub use arrival::ArrivalSchedule;
pub use churn::{ChurnConfig, ChurnOp, ChurnTrace, Lifetime};
pub use drift::{drift_allocations, DRIFT_PHASES};
pub use entry_gen::{EntryClass, MixtureProfile};
pub use snapshot::{capture, heatmap, Heatmap, SnapshotConfig, SnapshotStats};
pub use spec::{AllocationSpec, SpatialPattern, TemporalDrift};
pub use suite::{
    all_benchmarks, by_name, dl_benchmarks, geomean, hpc_benchmarks, Benchmark, Scale, Suite,
};
pub use trace::{Access, AccessProfile, TraceGenerator};
