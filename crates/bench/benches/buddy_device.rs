//! Criterion micro-benchmarks for the functional Buddy device: entry write
//! (compress + place) and read (translate + decompress) throughput, per
//! target ratio.

use bpc::ENTRY_BYTES;
use buddy_core::{BuddyDevice, DeviceConfig, TargetRatio};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn mixed_entry(i: u64) -> [u8; ENTRY_BYTES] {
    let mut e = [0u8; ENTRY_BYTES];
    match i % 3 {
        0 => {}
        1 => {
            for (j, c) in e.chunks_exact_mut(4).enumerate() {
                c.copy_from_slice(&(i as u32 + 3 * j as u32).to_le_bytes());
            }
        }
        _ => {
            let mut s = i;
            for b in e.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (s >> 33) as u8;
            }
        }
    }
    e
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy-device");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for target in [TargetRatio::R1_33, TargetRatio::R2, TargetRatio::R4] {
        group.bench_with_input(
            BenchmarkId::new("write", target.to_string()),
            &target,
            |b, &t| {
                let mut dev = BuddyDevice::new(DeviceConfig {
                    device_capacity: 4 << 20,
                    carve_out_factor: 3,
                });
                let alloc = dev.alloc("bench", 4096, t).expect("allocation fits");
                let mut i = 0u64;
                b.iter(|| {
                    let entry = mixed_entry(i);
                    dev.write_entry(alloc, i % 4096, &entry)
                        .expect("write succeeds");
                    i += 1;
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read", target.to_string()),
            &target,
            |b, &t| {
                let mut dev = BuddyDevice::new(DeviceConfig {
                    device_capacity: 4 << 20,
                    carve_out_factor: 3,
                });
                let alloc = dev.alloc("bench", 4096, t).expect("allocation fits");
                for i in 0..4096u64 {
                    dev.write_entry(alloc, i, &mixed_entry(i))
                        .expect("write succeeds");
                }
                let mut i = 0u64;
                b.iter(|| {
                    let entry = dev.read_entry(alloc, i % 4096).expect("read succeeds");
                    i += 1;
                    entry
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_device
}
criterion_main!(benches);
