//! A real minibatch-SGD convergence experiment (Figure 13d).
//!
//! The paper trains ResNet50 on CIFAR100 for 100 epochs at different
//! mini-batch sizes and shows that very small batches (16, 32) fail to
//! reach maximum validation accuracy — the mechanism being batch
//! normalization, whose statistics become too noisy below ~32 samples
//! (§4.4 cites Wu & He's Group Normalization finding). Training ResNet50 is
//! out of scope for a CPU-only crate, so we reproduce the *mechanism* with
//! a genuinely trained model: a two-layer MLP with batch normalization on a
//! synthetic multi-class task, trained with minibatch SGD + momentum and
//! linear learning-rate scaling. Everything here is real training — real
//! forward/backward passes, real parameter updates — not a curve fit.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Synthetic classification dataset: `classes` Gaussian clusters in
/// `features`-dimensional space with class-overlap noise.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Flattened `[n][features]` inputs.
    pub x: Vec<f32>,
    /// Labels in `0..classes`.
    pub y: Vec<usize>,
    /// Feature dimensionality.
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Generates a dataset of `n` samples.
    pub fn synthetic(n: usize, features: usize, classes: usize, noise: f32, seed: u64) -> Self {
        Self::synthetic_split(n, 0, features, classes, noise, seed).0
    }

    /// Generates a train/validation pair drawn from the *same* class
    /// centroids (the validation set must share the training distribution).
    pub fn synthetic_split(
        n_train: usize,
        n_val: usize,
        features: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> (Self, Self) {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random unit-ish class centroids, shared by both splits.
        let centroids: Vec<f32> = (0..classes * features)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let mut draw = |n: usize| {
            let mut x = Vec::with_capacity(n * features);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let class = rng.gen_range(0..classes);
                for f in 0..features {
                    let c = centroids[class * features + f];
                    // Box-Muller normal noise.
                    let u1: f32 = rng.gen_range(1e-6f32..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let gauss = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    x.push(c + noise * gauss);
                }
                y.push(class);
            }
            Dataset {
                x,
                y,
                features,
                classes,
            }
        };
        let train = draw(n_train);
        let val = draw(n_val);
        (train, val)
    }

    /// Generates a train/validation pair of the *radial shells* task:
    /// class `c` lives on the sphere of radius `1 + 0.4 c`, perturbed by
    /// uniform noise. Separating concentric shells requires the network's
    /// nonlinearity and is strongly normalization-dependent, making it the
    /// right stress test for the batch-norm mechanism of Figure 13d.
    pub fn shells_split(
        n_train: usize,
        n_val: usize,
        features: usize,
        classes: usize,
        noise: f32,
        seed: u64,
    ) -> (Self, Self) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut draw = |n: usize| {
            let mut x = Vec::with_capacity(n * features);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let class = rng.gen_range(0..classes);
                let radius = 1.0 + 0.4 * class as f32;
                let mut v: Vec<f32> = (0..features)
                    .map(|_| {
                        let u1: f32 = rng.gen_range(1e-6f32..1.0);
                        let u2: f32 = rng.gen_range(0.0f32..1.0);
                        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                    })
                    .collect();
                let norm = v.iter().map(|a| a * a).sum::<f32>().sqrt().max(1e-6);
                for vi in v.iter_mut() {
                    *vi = *vi / norm * radius + noise * rng.gen_range(-1.0f32..1.0);
                }
                x.extend_from_slice(&v);
                y.push(class);
            }
            Dataset {
                x,
                y,
                features,
                classes,
            }
        };
        let train = draw(n_train);
        let val = draw(n_val);
        (train, val)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch: usize,
    /// Epochs to train.
    pub epochs: usize,
    /// Learning rate at the reference batch of 64 (scaled linearly with
    /// batch, after Goyal et al.).
    pub base_lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Hidden layer width.
    pub hidden: usize,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            batch: 64,
            epochs: 100,
            base_lr: 0.05,
            momentum: 0.9,
            hidden: 48,
            seed: 7,
        }
    }
}

/// Validation accuracy per epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainResult {
    /// Mini-batch size trained with.
    pub batch: usize,
    /// Validation accuracy after each epoch.
    pub val_accuracy: Vec<f64>,
}

impl TrainResult {
    /// Best validation accuracy over the run.
    pub fn best(&self) -> f64 {
        self.val_accuracy.iter().copied().fold(0.0, f64::max)
    }

    /// Mean accuracy over the last `k` epochs (plateau estimate).
    pub fn final_plateau(&self, k: usize) -> f64 {
        let n = self.val_accuracy.len();
        let k = k.min(n).max(1);
        self.val_accuracy[n - k..].iter().sum::<f64>() / k as f64
    }

    /// First epoch reaching `threshold` accuracy, if any (convergence
    /// speed).
    pub fn epochs_to_reach(&self, threshold: f64) -> Option<usize> {
        self.val_accuracy
            .iter()
            .position(|&a| a >= threshold)
            .map(|e| e + 1)
    }
}

/// MLP with batch normalization: `Linear → BatchNorm → ReLU → Linear`.
struct Mlp {
    d: usize,
    h: usize,
    k: usize,
    w1: Vec<f32>,
    b1: Vec<f32>,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    w2: Vec<f32>,
    b2: Vec<f32>,
    // Momentum buffers.
    vw1: Vec<f32>,
    vb1: Vec<f32>,
    vgamma: Vec<f32>,
    vbeta: Vec<f32>,
    vw2: Vec<f32>,
    vb2: Vec<f32>,
    // Batch-norm running statistics for evaluation.
    run_mean: Vec<f32>,
    run_var: Vec<f32>,
}

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.9;

impl Mlp {
    fn new(d: usize, h: usize, k: usize, rng: &mut SmallRng) -> Self {
        let scale1 = (2.0 / d as f32).sqrt();
        let scale2 = (2.0 / h as f32).sqrt();
        Self {
            d,
            h,
            k,
            w1: (0..d * h).map(|_| rng.gen_range(-scale1..scale1)).collect(),
            b1: vec![0.0; h],
            gamma: vec![1.0; h],
            beta: vec![0.0; h],
            w2: (0..h * k).map(|_| rng.gen_range(-scale2..scale2)).collect(),
            b2: vec![0.0; k],
            vw1: vec![0.0; d * h],
            vb1: vec![0.0; h],
            vgamma: vec![0.0; h],
            vbeta: vec![0.0; h],
            vw2: vec![0.0; h * k],
            vb2: vec![0.0; k],
            run_mean: vec![0.0; h],
            run_var: vec![1.0; h],
        }
    }

    /// One SGD step on a mini-batch; returns the mean loss.
    #[allow(clippy::needless_range_loop)]
    fn train_step(&mut self, x: &[f32], y: &[usize], lr: f32, momentum: f32) -> f32 {
        let b = y.len();
        let (d, h, k) = (self.d, self.h, self.k);

        // ---- forward ----
        let mut z1 = vec![0.0f32; b * h];
        for i in 0..b {
            for j in 0..h {
                let mut acc = self.b1[j];
                for f in 0..d {
                    acc += x[i * d + f] * self.w1[f * h + j];
                }
                z1[i * h + j] = acc;
            }
        }
        // Batch normalization with *batch* statistics — the noise source.
        let mut mean = vec![0.0f32; h];
        let mut var = vec![0.0f32; h];
        for j in 0..h {
            let mut m = 0.0;
            for i in 0..b {
                m += z1[i * h + j];
            }
            m /= b as f32;
            let mut v = 0.0;
            for i in 0..b {
                let dlt = z1[i * h + j] - m;
                v += dlt * dlt;
            }
            v /= b as f32;
            mean[j] = m;
            var[j] = v;
            self.run_mean[j] = BN_MOMENTUM * self.run_mean[j] + (1.0 - BN_MOMENTUM) * m;
            self.run_var[j] = BN_MOMENTUM * self.run_var[j] + (1.0 - BN_MOMENTUM) * v;
        }
        let mut xhat = vec![0.0f32; b * h];
        let mut a = vec![0.0f32; b * h]; // post-ReLU activations
        for i in 0..b {
            for j in 0..h {
                let norm = (z1[i * h + j] - mean[j]) / (var[j] + BN_EPS).sqrt();
                xhat[i * h + j] = norm;
                let pre = self.gamma[j] * norm + self.beta[j];
                a[i * h + j] = pre.max(0.0);
            }
        }
        let mut probs = vec![0.0f32; b * k];
        let mut loss = 0.0f32;
        for i in 0..b {
            let mut logits = vec![0.0f32; k];
            for c in 0..k {
                let mut acc = self.b2[c];
                for j in 0..h {
                    acc += a[i * h + j] * self.w2[j * k + c];
                }
                logits[c] = acc;
            }
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for c in 0..k {
                let e = (logits[c] - max).exp();
                probs[i * k + c] = e;
                denom += e;
            }
            for c in 0..k {
                probs[i * k + c] /= denom;
            }
            loss -= probs[i * k + y[i]].max(1e-12).ln();
        }
        loss /= b as f32;

        // ---- backward ----
        let mut dz2 = probs;
        for i in 0..b {
            dz2[i * k + y[i]] -= 1.0;
            for c in 0..k {
                dz2[i * k + c] /= b as f32;
            }
        }
        let mut dw2 = vec![0.0f32; h * k];
        let mut db2 = vec![0.0f32; k];
        for i in 0..b {
            for c in 0..k {
                let g = dz2[i * k + c];
                db2[c] += g;
                for j in 0..h {
                    dw2[j * k + c] += a[i * h + j] * g;
                }
            }
        }
        // Through ReLU into the BN output.
        let mut dy1 = vec![0.0f32; b * h];
        for i in 0..b {
            for j in 0..h {
                if a[i * h + j] > 0.0 {
                    let mut g = 0.0;
                    for c in 0..k {
                        g += dz2[i * k + c] * self.w2[j * k + c];
                    }
                    dy1[i * h + j] = g;
                }
            }
        }
        // BN backward.
        let mut dgamma = vec![0.0f32; h];
        let mut dbeta = vec![0.0f32; h];
        let mut dz1 = vec![0.0f32; b * h];
        for j in 0..h {
            let std = (var[j] + BN_EPS).sqrt();
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for i in 0..b {
                let dxhat = dy1[i * h + j] * self.gamma[j];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat[i * h + j];
                dgamma[j] += dy1[i * h + j] * xhat[i * h + j];
                dbeta[j] += dy1[i * h + j];
            }
            for i in 0..b {
                let dxhat = dy1[i * h + j] * self.gamma[j];
                dz1[i * h + j] = (dxhat * b as f32 - sum_dxhat - xhat[i * h + j] * sum_dxhat_xhat)
                    / (b as f32 * std);
            }
        }
        let mut dw1 = vec![0.0f32; d * h];
        let mut db1 = vec![0.0f32; h];
        for i in 0..b {
            for j in 0..h {
                let g = dz1[i * h + j];
                db1[j] += g;
                for f in 0..d {
                    dw1[f * h + j] += x[i * d + f] * g;
                }
            }
        }

        // ---- SGD with momentum ----
        fn update(p: &mut [f32], v: &mut [f32], g: &[f32], lr: f32, momentum: f32) {
            for ((p, v), g) in p.iter_mut().zip(v.iter_mut()).zip(g.iter()) {
                *v = momentum * *v - lr * g;
                *p += *v;
            }
        }
        update(&mut self.w1, &mut self.vw1, &dw1, lr, momentum);
        update(&mut self.b1, &mut self.vb1, &db1, lr, momentum);
        update(&mut self.gamma, &mut self.vgamma, &dgamma, lr, momentum);
        update(&mut self.beta, &mut self.vbeta, &dbeta, lr, momentum);
        update(&mut self.w2, &mut self.vw2, &dw2, lr, momentum);
        update(&mut self.b2, &mut self.vb2, &db2, lr, momentum);
        loss
    }

    /// Classifies one sample using the running BN statistics.
    fn predict(&self, x: &[f32]) -> usize {
        let (d, h, k) = (self.d, self.h, self.k);
        let mut best = 0;
        let mut best_score = f32::NEG_INFINITY;
        let mut hidden = vec![0.0f32; h];
        for (j, out) in hidden.iter_mut().enumerate() {
            let mut acc = self.b1[j];
            for (f, &xf) in x.iter().enumerate().take(d) {
                acc += xf * self.w1[f * h + j];
            }
            let norm = (acc - self.run_mean[j]) / (self.run_var[j] + BN_EPS).sqrt();
            *out = (self.gamma[j] * norm + self.beta[j]).max(0.0);
        }
        for c in 0..k {
            let mut acc = self.b2[c];
            for (j, &a) in hidden.iter().enumerate() {
                acc += a * self.w2[j * k + c];
            }
            if acc > best_score {
                best_score = acc;
                best = c;
            }
        }
        best
    }
}

/// Trains the MLP on `train`, evaluating on `val` after each epoch.
pub fn train(train_set: &Dataset, val_set: &Dataset, config: &TrainConfig) -> TrainResult {
    assert_eq!(train_set.features, val_set.features);
    assert!(
        config.batch > 0 && config.epochs > 0,
        "batch and epochs must be positive"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut model = Mlp::new(
        train_set.features,
        config.hidden,
        train_set.classes,
        &mut rng,
    );
    // Linear LR scaling relative to the reference batch of 64.
    let lr = config.base_lr * config.batch as f32 / 64.0;

    let n = train_set.len();
    let d = train_set.features;
    let mut order: Vec<usize> = (0..n).collect();
    let mut val_accuracy = Vec::with_capacity(config.epochs);

    for _epoch in 0..config.epochs {
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(config.batch) {
            if chunk.len() < 2 {
                continue; // batch norm needs at least two samples
            }
            let mut bx = Vec::with_capacity(chunk.len() * d);
            let mut by = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                bx.extend_from_slice(&train_set.x[idx * d..(idx + 1) * d]);
                by.push(train_set.y[idx]);
            }
            model.train_step(&bx, &by, lr, config.momentum);
        }
        let correct = (0..val_set.len())
            .filter(|&i| model.predict(&val_set.x[i * d..(i + 1) * d]) == val_set.y[i])
            .count();
        val_accuracy.push(correct as f64 / val_set.len() as f64);
    }
    TrainResult {
        batch: config.batch,
        val_accuracy,
    }
}

/// Runs the full Figure 13d sweep over mini-batch sizes on the radial
/// shells task.
pub fn batch_size_sweep(batches: &[usize], epochs: usize, seed: u64) -> Vec<TrainResult> {
    let (train_set, val_set) = Dataset::shells_split(4096, 1024, 8, 8, 0.12, seed);
    batches
        .iter()
        .map(|&batch| {
            train(
                &train_set,
                &val_set,
                &TrainConfig {
                    batch,
                    epochs,
                    base_lr: 0.08,
                    seed: seed + 2,
                    ..TrainConfig::default()
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let a = Dataset::synthetic(100, 8, 4, 0.3, 1);
        let b = Dataset::synthetic(100, 8, 4, 0.3, 1);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        assert_eq!(a.len(), 100);
        assert!(!a.is_empty());
        assert!(a.y.iter().all(|&y| y < 4));
    }

    #[test]
    fn training_learns_gaussian_blobs() {
        // Linearly separable clusters: learned almost immediately.
        let (train_set, val_set) = Dataset::synthetic_split(2048, 512, 16, 10, 0.5, 3);
        let result = train(
            &train_set,
            &val_set,
            &TrainConfig {
                batch: 64,
                epochs: 10,
                ..TrainConfig::default()
            },
        );
        assert!(
            result.best() > 0.80,
            "a separable synthetic task should train well: {:.3}",
            result.best()
        );
    }

    #[test]
    fn training_learns_shells_gradually() {
        // The nonlinear shells task converges over tens of epochs.
        let (train_set, val_set) = Dataset::shells_split(2048, 512, 8, 8, 0.12, 5);
        let result = train(
            &train_set,
            &val_set,
            &TrainConfig {
                batch: 64,
                epochs: 30,
                base_lr: 0.08,
                ..TrainConfig::default()
            },
        );
        assert!(
            result.best() > 0.55,
            "shells should be learnable: {:.3}",
            result.best()
        );
        // Accuracy improves substantially over training.
        assert!(result.val_accuracy[29] > result.val_accuracy[0] + 0.1);
    }

    #[test]
    fn moderate_batches_beat_tiny_batches() {
        // The Figure 13d mechanism: batch-norm statistics over 16 samples
        // are too noisy to reach maximum accuracy; batch 128 plateaus
        // clearly higher.
        let results = batch_size_sweep(&[16, 128], 40, 21);
        let tiny = results[0].final_plateau(10);
        let moderate = results[1].final_plateau(10);
        assert!(
            moderate > tiny + 0.02,
            "batch 128 ({moderate:.3}) should clearly beat batch 16 ({tiny:.3})"
        );
    }

    #[test]
    fn result_helpers() {
        let r = TrainResult {
            batch: 64,
            val_accuracy: vec![0.2, 0.5, 0.9, 0.85],
        };
        assert_eq!(r.best(), 0.9);
        assert_eq!(r.epochs_to_reach(0.5), Some(2));
        assert_eq!(r.epochs_to_reach(0.95), None);
        assert!((r.final_plateau(2) - 0.875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_panics() {
        let d = Dataset::synthetic(10, 4, 2, 0.1, 1);
        train(
            &d,
            &d,
            &TrainConfig {
                batch: 0,
                ..TrainConfig::default()
            },
        );
    }
}
