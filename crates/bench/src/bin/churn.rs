//! Steady-state allocation-churn sweep: effective ratio, fragmentation
//! and alloc-failure rate per lifetime distribution (DESIGN.md §9).
//! Pass `--quick` for a reduced smoke run and `--metrics-out <base>` for
//! `<base>.prom` / `<base>.csv` metric artifacts.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::churnfig::churn(&cfg)
}
