//! Shadow-state auditing (`--features audit`): an independent mirror of the
//! device's reservation bookkeeping that re-validates structural invariants
//! after every mutating operation.
//!
//! The auditor never trusts the [`RegionAllocator`]s it audits: it keeps its
//! own `(base, len)` map per region, fed only by the *requests* the device
//! makes (alloc / free / retarget), and after each mutation checks that the
//! allocator's view of the world and the shadow's agree exactly:
//!
//! * **No overlapping reservations** — shadow reservations and the
//!   allocator's free runs must tile `[0, capacity)` with no gap and no
//!   overlap (which also proves `used()` conservation: bytes reserved ==
//!   bytes the allocator believes are in use).
//! * **Canonical free lists** — free runs sorted, non-empty, disjoint and
//!   eagerly coalesced (no two adjacent runs).
//! * **Generation monotonicity** — a slot's generation never goes
//!   backwards, and every free bumps it by exactly one, so a stale
//!   [`AllocId`](crate::AllocId) can never re-validate.
//!
//! Every violation aborts with an assertion naming the region and the
//! offending ranges — the point is to catch a future lock-free or
//! allocator refactor corrupting state *at the mutation that corrupts it*,
//! not at the far-away read that observes it. The feature is compiled out
//! entirely in normal builds; CI runs the equivalence and churn suites with
//! it enabled.

use crate::region::RegionAllocator;
use crate::target::TargetRatio;
use std::collections::BTreeMap;

/// The auditor's record of one live allocation, mirrored from the alloc
/// request (not read back from the device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowAlloc {
    /// Generation of the handle that owns the slot.
    pub generation: u64,
    /// Target ratio the allocation currently holds.
    pub target: TargetRatio,
    /// Entry count.
    pub entries: u64,
    /// Byte offset in device memory.
    pub device_base: u64,
    /// Byte offset in the buddy carve-out.
    pub buddy_base: u64,
    /// First entry index in the metadata array.
    pub metadata_base: u64,
}

impl ShadowAlloc {
    fn device_len(&self) -> u64 {
        self.entries * self.target.device_bytes_per_entry() as u64
    }

    fn buddy_len(&self) -> u64 {
        self.entries * self.target.buddy_bytes_per_entry() as u64
    }
}

/// An independent mirror of one [`RegionAllocator`]'s reservations.
#[derive(Debug, Clone, Default)]
pub struct ShadowRegion {
    /// Region name used in violation messages.
    label: &'static str,
    /// Live reservations, `base -> len`. Zero-length reservations are not
    /// recorded (the allocator hands them offset 0 without reserving).
    reservations: BTreeMap<u64, u64>,
}

impl ShadowRegion {
    /// An empty mirror for the region called `label` in messages.
    pub fn new(label: &'static str) -> Self {
        Self {
            label,
            reservations: BTreeMap::new(),
        }
    }

    /// Number of live reservations.
    pub fn len(&self) -> usize {
        self.reservations.len()
    }

    /// True when nothing is reserved.
    pub fn is_empty(&self) -> bool {
        self.reservations.is_empty()
    }

    /// True when `[base, base+len)` is exactly a live reservation.
    pub fn is_live(&self, base: u64, len: u64) -> bool {
        len > 0 && self.reservations.get(&base) == Some(&len)
    }

    /// Records a reservation, asserting it overlaps no existing one.
    pub fn reserve(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some((&prev_base, &prev_len)) = self.reservations.range(..=base).next_back() {
            assert!(
                prev_base + prev_len <= base,
                "{}: new reservation [{base}, +{len}) overlaps live [{prev_base}, +{prev_len})",
                self.label
            );
        }
        if let Some((&next_base, &next_len)) = self.reservations.range(base..).next() {
            assert!(
                base + len <= next_base,
                "{}: new reservation [{base}, +{len}) overlaps live [{next_base}, +{next_len})",
                self.label
            );
        }
        self.reservations.insert(base, len);
    }

    /// Releases a reservation, asserting it matches a live one exactly —
    /// this is the double-free / partial-free detector that does not rely
    /// on the allocator's own panics.
    pub fn release(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let live = self.reservations.get(&base).copied();
        assert_eq!(
            live,
            Some(len),
            "{}: release of [{base}, +{len}) does not match a live reservation \
             (shadow holds {live:?} at this base) — double free or corrupted handle",
            self.label
        );
        self.reservations.remove(&base);
    }

    /// Validates the mirrored reservations against the real allocator:
    /// canonical free list, exact tiling of `[0, capacity)`, and `used()`
    /// conservation.
    pub fn validate(&self, region: &RegionAllocator) {
        let label = self.label;
        let free = region.free_runs();
        let mut prev_end: Option<u64> = None;
        for &(offset, len) in &free {
            assert!(len > 0, "{label}: empty free run at {offset}");
            assert!(
                offset
                    .checked_add(len)
                    .is_some_and(|e| e <= region.capacity()),
                "{label}: free run [{offset}, +{len}) past capacity {}",
                region.capacity()
            );
            if let Some(end) = prev_end {
                assert!(
                    end < offset,
                    "{label}: free list not sorted/coalesced around offset {offset} \
                     (previous run ends at {end})"
                );
            }
            prev_end = Some(offset + len);
        }

        // Merge-walk reservations and free runs: together they must tile
        // [0, capacity) exactly — no gap (a leak: bytes neither live nor
        // free) and no overlap (corruption: bytes both live and free).
        let mut intervals: Vec<(u64, u64, &'static str)> = free
            .iter()
            .map(|&(offset, len)| (offset, len, "free"))
            .chain(
                self.reservations
                    .iter()
                    .map(|(&base, &len)| (base, len, "live")),
            )
            .collect();
        intervals.sort_unstable();
        let mut cursor = 0u64;
        for &(offset, len, kind) in &intervals {
            assert_eq!(
                offset, cursor,
                "{label}: {kind} run [{offset}, +{len}) does not start at the tiling \
                 cursor {cursor} — a gap means leaked units, an overlap means a \
                 reservation and a free run share bytes"
            );
            cursor += len;
        }
        assert_eq!(
            cursor,
            region.capacity(),
            "{label}: reservations + free runs cover {cursor} of {} capacity units",
            region.capacity()
        );

        let shadow_used: u64 = self.reservations.values().sum();
        assert_eq!(
            shadow_used,
            region.used(),
            "{label}: allocator reports {} units used but the shadow holds {shadow_used}",
            region.used()
        );
    }
}

/// The device-level auditor: one [`ShadowRegion`] per storage region plus
/// the generation mirror. Owned by `BuddyDevice` behind
/// `cfg(feature = "audit")` and fed by hooks in every mutating operation.
#[derive(Debug, Clone)]
pub struct DeviceAuditor {
    device: ShadowRegion,
    buddy: ShadowRegion,
    metadata: ShadowRegion,
    /// Live allocations by slot.
    live: BTreeMap<u32, ShadowAlloc>,
    /// The generation each slot must carry on its *next* allocation: 0 for
    /// never-used slots, `freed + 1` after a free. Never decreases.
    next_generation: BTreeMap<u32, u64>,
}

impl DeviceAuditor {
    /// A fresh auditor for an empty device.
    pub fn new() -> Self {
        Self {
            device: ShadowRegion::new("device region"),
            buddy: ShadowRegion::new("buddy region"),
            metadata: ShadowRegion::new("metadata region"),
            live: BTreeMap::new(),
            next_generation: BTreeMap::new(),
        }
    }

    /// Number of live allocations the shadow believes exist.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Mirrors a successful `alloc`, checking slot reuse discipline and
    /// reservation disjointness.
    pub fn record_alloc(&mut self, slot: u32, alloc: ShadowAlloc) {
        assert!(
            !self.live.contains_key(&slot),
            "slot {slot} allocated while the shadow still holds it live"
        );
        let expected = self.next_generation.get(&slot).copied().unwrap_or(0);
        assert_eq!(
            alloc.generation, expected,
            "slot {slot}: generation must be exactly the post-free successor \
             (expected {expected}, device handed out {})",
            alloc.generation
        );
        self.device.reserve(alloc.device_base, alloc.device_len());
        self.buddy.reserve(alloc.buddy_base, alloc.buddy_len());
        self.metadata.reserve(alloc.metadata_base, alloc.entries);
        self.live.insert(slot, alloc);
    }

    /// Mirrors a successful `free`, checking the freed ranges match the
    /// live reservation exactly and bumping the generation floor.
    pub fn record_free(&mut self, slot: u32, generation: u64) {
        let Some(alloc) = self.live.remove(&slot) else {
            panic!("free of slot {slot} which the shadow does not hold live"); // lint-allow(no-unwrap): the auditor's whole job is to abort on divergence
        };
        assert_eq!(
            alloc.generation, generation,
            "slot {slot}: freed generation diverges from the shadow"
        );
        self.device.release(alloc.device_base, alloc.device_len());
        self.buddy.release(alloc.buddy_base, alloc.buddy_len());
        self.metadata.release(alloc.metadata_base, alloc.entries);
        let next = generation.wrapping_add(1);
        if let Some(&floor) = self.next_generation.get(&slot) {
            assert!(
                next >= floor,
                "slot {slot}: generation moved backwards ({next} < {floor})"
            );
        }
        self.next_generation.insert(slot, next);
    }

    /// Mirrors a successful `retarget`: the old device/buddy/metadata
    /// reservations are swapped for the new ones; the entry count and the
    /// generation are unchanged (migration is not a free). The metadata
    /// range moves because retarget re-encodes into a *fresh* metadata
    /// region — an old-epoch reader must never pair new-layout nibbles
    /// with old-layout bytes.
    pub fn record_retarget(&mut self, slot: u32, updated: ShadowAlloc) {
        let Some(old) = self.live.get(&slot).copied() else {
            // lint-allow(no-unwrap): the auditor's whole job is to abort on divergence
            panic!("retarget of slot {slot} which the shadow does not hold live");
        };
        assert_eq!(
            old.generation, updated.generation,
            "slot {slot}: retarget must not change the handle generation"
        );
        assert_eq!(
            old.entries, updated.entries,
            "slot {slot}: retarget must keep the entry count"
        );
        self.device.release(old.device_base, old.device_len());
        self.buddy.release(old.buddy_base, old.buddy_len());
        self.metadata.release(old.metadata_base, old.entries);
        self.device
            .reserve(updated.device_base, updated.device_len());
        self.buddy.reserve(updated.buddy_base, updated.buddy_len());
        self.metadata
            .reserve(updated.metadata_base, updated.entries);
        self.live.insert(slot, updated);
    }

    /// Validates every mirrored region against the real allocators. Called
    /// by the device after each mutating operation.
    pub fn validate(
        &self,
        device_region: &RegionAllocator,
        buddy_region: &RegionAllocator,
        metadata_region: &RegionAllocator,
    ) {
        self.device.validate(device_region);
        self.buddy.validate(buddy_region);
        self.metadata.validate(metadata_region);
    }
}

impl Default for DeviceAuditor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow_of(region: &mut RegionAllocator, lens: &[u64]) -> (ShadowRegion, Vec<u64>) {
        let mut shadow = ShadowRegion::new("test region");
        let mut bases = Vec::new();
        for &len in lens {
            let base = region.alloc(len).expect("test region sized for the plan");
            shadow.reserve(base, len);
            bases.push(base);
        }
        (shadow, bases)
    }

    #[test]
    fn shadow_agrees_with_a_healthy_allocator() {
        let mut region = RegionAllocator::new(1000);
        let (mut shadow, bases) = shadow_of(&mut region, &[100, 200, 50]);
        shadow.validate(&region);
        region.free(bases[1], 200);
        shadow.release(bases[1], 200);
        shadow.validate(&region);
        assert!(shadow.is_live(bases[0], 100));
        assert!(!shadow.is_live(bases[1], 200));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn shadow_release_catches_double_free_without_allocator_help() {
        let mut shadow = ShadowRegion::new("test region");
        shadow.reserve(0, 10);
        shadow.release(0, 10);
        shadow.release(0, 10);
    }

    #[test]
    #[should_panic(expected = "overlaps live")]
    fn shadow_reserve_catches_overlap() {
        let mut shadow = ShadowRegion::new("test region");
        shadow.reserve(0, 10);
        shadow.reserve(5, 10);
    }

    #[test]
    #[should_panic(expected = "tiling cursor")]
    fn validate_catches_a_leaked_reservation() {
        let mut region = RegionAllocator::new(100);
        let shadow = ShadowRegion::new("test region");
        // The allocator believes 10 units are used, the shadow knows of
        // nothing — bytes neither live nor free from the shadow's view.
        let _ = region.alloc(10);
        shadow.validate(&region);
    }

    #[test]
    fn generations_march_forward() {
        let mut auditor = DeviceAuditor::new();
        let alloc = ShadowAlloc {
            generation: 0,
            target: TargetRatio::R2,
            entries: 4,
            device_base: 0,
            buddy_base: 0,
            metadata_base: 0,
        };
        auditor.record_alloc(7, alloc);
        auditor.record_free(7, 0);
        // Reuse must come back at generation 1.
        auditor.record_alloc(
            7,
            ShadowAlloc {
                generation: 1,
                ..alloc
            },
        );
        assert_eq!(auditor.live_count(), 1);
    }

    #[test]
    #[should_panic(expected = "post-free successor")]
    fn stale_generation_reuse_is_rejected() {
        let mut auditor = DeviceAuditor::new();
        let alloc = ShadowAlloc {
            generation: 0,
            target: TargetRatio::R1,
            entries: 1,
            device_base: 0,
            buddy_base: 0,
            metadata_base: 0,
        };
        auditor.record_alloc(3, alloc);
        auditor.record_free(3, 0);
        // Handing out generation 0 again would revive stale handles.
        auditor.record_alloc(3, alloc);
    }
}
