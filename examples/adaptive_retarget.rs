//! Online re-targeting on one allocation: a profiling-time target goes
//! stale as the data drifts, the adaptive policy notices from live
//! metadata, and [`BuddyDevice::retarget`] migrates the allocation without
//! changing a single observable byte.
//!
//! Run with `cargo run --example adaptive_retarget`.

use buddy_compression::bpc::SizeClass;
use buddy_compression::buddy_core::{
    AdaptConfig, BuddyDevice, DeviceConfig, RetargetPolicy, TargetRatio,
};
use buddy_compression::workloads::entry_gen::{mix, EntryClass};

const ENTRIES: u64 = 4096;

fn main() {
    let mut dev = BuddyDevice::new(DeviceConfig {
        device_capacity: 1 << 20,
        carve_out_factor: 3,
    });

    // Profiling saw highly compressible early-run data: 4x it is.
    let alloc = dev
        .alloc("activations", ENTRIES, TargetRatio::R4)
        .expect("device sized for the allocation");
    let ramp = EntryClass::for_target(SizeClass::B8);
    let early: Vec<_> = (0..ENTRIES).map(|i| ramp.generate(mix(&[1, i]))).collect();
    dev.write_entries(alloc, 0, &early).expect("in-range write");
    println!(
        "allocated {ENTRIES} entries at 4x; early data overflows {:.1}% of entries",
        100.0
            * dev
                .state_window(alloc)
                .unwrap()
                .overflow_fraction(TargetRatio::R4)
    );

    // Training drifts: 60% of the entries now need two sectors.
    let dense = EntryClass::for_target(SizeClass::B64);
    let late: Vec<_> = (0..ENTRIES)
        .map(|i| {
            if i % 5 < 3 {
                dense.generate(mix(&[2, i]))
            } else {
                early[i as usize]
            }
        })
        .collect();
    dev.write_entries(alloc, 0, &late).expect("in-range write");

    // The policy reads the live 4-bit metadata — no profiling rerun — and
    // recommends a demotion.
    let policy = RetargetPolicy::new(AdaptConfig::default());
    let window = dev.state_window(alloc).unwrap();
    let next = policy
        .recommend(TargetRatio::R4, &window)
        .expect("drifted data demands a demotion");
    println!(
        "policy recommends {next} (observed 4x overflow now {:.1}%)",
        100.0 * window.overflow_fraction(TargetRatio::R4)
    );

    let report = dev.retarget(alloc, next).expect("capacity for demotion");
    println!(
        "retargeted {} -> {}: {} entries re-encoded, {} sectors moved, device {:+} B",
        report.old_target,
        report.new_target,
        report.entries,
        report.moved_sectors,
        report.device_bytes_delta
    );

    // Migration is invisible to readers: every byte survives.
    dev.reset_stats();
    let mut out = vec![[0u8; 128]; ENTRIES as usize];
    dev.read_entries(alloc, 0, &mut out).expect("in-range read");
    let intact = out.iter().zip(late.iter()).filter(|(a, b)| a == b).count();
    println!("read-back verified: {intact}/{ENTRIES} entries byte-identical");
    println!(
        "effective ratio {:.2}x, buddy fraction of the read pass {:.1}%",
        dev.effective_ratio(),
        100.0 * dev.stats().buddy_access_fraction()
    );
}
