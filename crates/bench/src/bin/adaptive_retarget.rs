//! Online re-targeting study: static one-shot profiling vs the adaptive
//! policy over the drift workload (DESIGN.md §8). Writes
//! `results/adaptive_retarget.csv`. Pass --quick for a reduced run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::adaptfig::adaptive_retarget(&cfg)
}
