//! Tables 1 and 2 of the paper.

use crate::report::{print_table, write_csv, RunConfig};
use buddy_compression::gpu_sim::GpuConfig;
use buddy_compression::workloads::{all_benchmarks, Suite};
use std::io;

/// Table 1: the GPU benchmarks and their memory footprints.
pub fn table1(cfg: &RunConfig) -> io::Result<()> {
    let rows: Vec<Vec<String>> = all_benchmarks()
        .iter()
        .map(|b| {
            let suite = match b.suite {
                Suite::SpecAccel => "HPC SpecAccel",
                Suite::FastForward => "HPC FastForward",
                Suite::DlTraining => "DL Training",
            };
            let footprint = if b.footprint_bytes >= 1 << 30 {
                format!("{:.2}GB", b.footprint_bytes as f64 / (1u64 << 30) as f64)
            } else {
                format!("{:.2}MB", b.footprint_bytes as f64 / (1u64 << 20) as f64)
            };
            vec![
                b.name.to_string(),
                suite.to_string(),
                footprint,
                format!(
                    "{:.1}MB",
                    b.sim_footprint_bytes() as f64 / (1u64 << 20) as f64
                ),
            ]
        })
        .collect();
    let header = [
        "benchmark",
        "suite",
        "footprint (Table 1)",
        "simulated footprint",
    ];
    print_table("Table 1: GPU benchmarks", &header, &rows);
    write_csv(&cfg.results_dir, "table1", &header, &rows)?;
    Ok(())
}

/// Table 2: performance simulation parameters.
pub fn table2(cfg: &RunConfig) -> io::Result<()> {
    let gpu = GpuConfig::p100();
    println!("\n=== Table 2: performance simulation parameters ===");
    println!("{gpu}");
    let rows = vec![
        vec!["sms".to_string(), gpu.sms.to_string()],
        vec!["core_clock_ghz".to_string(), gpu.core_clock_ghz.to_string()],
        vec![
            "max_warps_per_sm".to_string(),
            gpu.max_warps_per_sm.to_string(),
        ],
        vec!["l2_bytes".to_string(), gpu.l2_bytes.to_string()],
        vec!["l2_slices".to_string(), gpu.l2_slices.to_string()],
        vec!["l2_ways".to_string(), gpu.l2_ways.to_string()],
        vec!["line_bytes".to_string(), gpu.line_bytes.to_string()],
        vec!["sector_bytes".to_string(), gpu.sector_bytes.to_string()],
        vec!["dram_channels".to_string(), gpu.dram_channels.to_string()],
        vec![
            "dram_bandwidth_gbps".to_string(),
            gpu.dram_bandwidth_gbps.to_string(),
        ],
        vec![
            "link_bandwidth_gbps".to_string(),
            gpu.link_bandwidth_gbps.to_string(),
        ],
        vec![
            "metadata_cache_bytes_per_slice".to_string(),
            gpu.metadata_cache_bytes_per_slice.to_string(),
        ],
        vec![
            "decompression_latency_cycles".to_string(),
            gpu.decompression_latency_cycles.to_string(),
        ],
    ];
    write_csv(&cfg.results_dir, "table2", &["parameter", "value"], &rows)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_emit_csv() {
        let cfg = RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-tables"),
            seed: 1,
            ..Default::default()
        };
        table1(&cfg).unwrap();
        table2(&cfg).unwrap();
        assert!(cfg.results_dir.join("table1.csv").exists());
        assert!(cfg.results_dir.join("table2.csv").exists());
    }
}
