//! Pins the log-bucketed histogram against an exact sorted-vec oracle.
//!
//! The documented contract (`buddy_obs::hist`): a percentile estimate is
//! **never below** the exact nearest-rank order statistic and at most
//! **12.5 % above** it, for samples below the saturation threshold.
//! Merging snapshots is associative and commutative, and merging is
//! indistinguishable from recording every sample into one histogram.

use buddy_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Exact nearest-rank percentile of an ascending-sorted sample.
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Samples below the saturation threshold, where the relative bound holds.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..buddy_obs::hist::SATURATION_VALUE, 0..max_len)
}

const QS: [f64; 7] = [0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn percentiles_match_the_sorted_vec_oracle(
        raw in proptest::collection::vec(0u64..buddy_obs::hist::SATURATION_VALUE, 1..400),
    ) {
        let snap = snapshot_of(&raw);
        let mut sorted = raw.clone();
        sorted.sort_unstable();
        for q in QS {
            let exact = nearest_rank(&sorted, q);
            let est = snap.value_at(q);
            prop_assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
            prop_assert!(
                est as f64 <= exact as f64 * 1.125,
                "q={q}: estimate {est} above the 12.5% bound for exact {exact}"
            );
        }
        prop_assert_eq!(snap.max(), *sorted.last().unwrap(), "max must be exact");
        prop_assert_eq!(snap.count(), raw.len() as u64);
        prop_assert_eq!(snap.sum(), raw.iter().sum::<u64>());
    }

    #[test]
    fn merge_is_commutative_associative_and_lossless(
        a in samples(150),
        b in samples(150),
        c in samples(150),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Lossless: merging thread-local snapshots is the same as having
        // recorded everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &snapshot_of(&all));
    }

    #[test]
    fn merged_percentiles_still_satisfy_the_oracle_bound(
        a in samples(200),
        b in samples(200),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut sorted: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        sorted.sort_unstable();
        for q in QS {
            let exact = nearest_rank(&sorted, q);
            let est = merged.value_at(q);
            prop_assert!(est >= exact, "q={q}: merged estimate {est} below exact {exact}");
            prop_assert!(
                est as f64 <= exact as f64 * 1.125,
                "q={q}: merged estimate {est} above bound for exact {exact}"
            );
        }
    }
}
