//! Cross-crate integration tests: the full paper pipeline from synthetic
//! workload data through BPC, the profiler, the functional device and the
//! performance simulator.

use buddy_compression::bpc::{BitPlane, BlockCompressor, CodecKind, ENTRY_BYTES};
use buddy_compression::buddy_core::{
    choose_naive, choose_targets, BuddyDevice, DeviceConfig, ProfileConfig, TargetRatio,
};
use buddy_compression::gpu_sim::{Engine, ExecConfig, Fidelity, GpuConfig, MemoryMode};
use buddy_compression::workloads::{all_benchmarks, by_name, entry_gen, geomean, Scale};
use buddy_compression::{
    benchmark_requests, profile_benchmark, profile_benchmark_at, profile_benchmark_with,
    BenchmarkLayout,
};

fn test_bench(name: &str) -> buddy_compression::workloads::Benchmark {
    let mut b = by_name(name).expect("benchmark exists");
    b.scale = Scale::test();
    b
}

/// The full §3.5 flow on a real workload image, ending with lossless
/// read-back from the functional device.
#[test]
fn profile_allocate_write_read_round_trip() {
    let bench = test_bench("356.sp");
    let profiles = profile_benchmark(&bench, 512, 3);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());

    let mut device = BuddyDevice::new(DeviceConfig {
        device_capacity: 64 << 20,
        carve_out_factor: 3,
    });
    let layout = bench.allocation_layout();
    for ((spec, entries), choice) in layout.iter().zip(outcome.choices.iter()) {
        let n = (*entries).min(256); // subset per allocation keeps this fast
        let alloc = device.alloc(spec.name, n, choice.target).expect("fits");
        let alloc_seed = buddy_compression::workloads::entry_gen::mix(&[3, 0]);
        for i in 0..n {
            let entry = spec.entry_at(alloc_seed, i, 0.5);
            device.write_entry(alloc, i, &entry).expect("write");
            assert_eq!(device.read_entry(alloc, i).expect("read"), entry);
        }
    }
    assert!(device.effective_ratio() > 1.5, "356.sp compresses well");
}

/// The codec-agnostic pipeline end to end: profile under each registered
/// codec, choose targets from that codec's histograms, then batch-write and
/// batch-read a real workload image through a device built with the same
/// codec. Stored streams must decode losslessly through the owning codec.
#[test]
fn codec_agnostic_pipeline_round_trips() {
    let bench = test_bench("370.bt");
    for codec in CodecKind::ALL {
        let profiles = profile_benchmark_with(&bench, codec, 256, 3);
        let outcome = choose_targets(&profiles, &ProfileConfig::default());
        let mut device = BuddyDevice::with_codec(
            DeviceConfig {
                device_capacity: 32 << 20,
                carve_out_factor: 3,
            },
            codec,
        );
        for (idx, ((spec, entries), choice)) in bench
            .allocation_layout()
            .into_iter()
            .zip(outcome.choices.iter())
            .enumerate()
        {
            let n = entries.min(128);
            let alloc = device.alloc(spec.name, n, choice.target).expect("fits");
            let alloc_seed = entry_gen::mix(&[3, idx as u64]);
            let data: Vec<[u8; ENTRY_BYTES]> =
                (0..n).map(|i| spec.entry_at(alloc_seed, i, 0.5)).collect();
            device.write_entries(alloc, 0, &data).expect("batch write");
            let mut out = vec![[0u8; ENTRY_BYTES]; n as usize];
            device.read_entries(alloc, 0, &mut out).expect("batch read");
            assert_eq!(
                out, data,
                "{codec}/{}: lossless batched read-back",
                spec.name
            );
        }
        assert!(device.effective_ratio() >= 1.0 - 1e-9);
    }
}

/// The §3.5 flow served multi-tenant: profiled targets drive concurrent
/// clients writing a real workload image through a sharded pool, with
/// lossless read-back under cross-client concurrency and the same
/// compression the single-device flow achieves.
#[test]
fn pooled_pipeline_round_trips_concurrently() {
    use buddy_compression::buddy_pool::{BuddyPool, PoolConfig};

    let bench = test_bench("356.sp");
    let profiles = profile_benchmark(&bench, 512, 3);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());

    let pool = BuddyPool::new(PoolConfig {
        shards: 4,
        shard_config: DeviceConfig {
            device_capacity: 16 << 20,
            carve_out_factor: 3,
        },
        codec: CodecKind::Bpc,
    });
    // One client per allocation, all writing and verifying concurrently.
    std::thread::scope(|scope| {
        for (idx, ((spec, entries), choice)) in bench
            .allocation_layout()
            .into_iter()
            .zip(outcome.choices.iter())
            .enumerate()
        {
            let pool = &pool;
            scope.spawn(move || {
                let n = entries.min(256);
                let alloc = pool.alloc(spec.name, n, choice.target).expect("fits");
                let alloc_seed = entry_gen::mix(&[3, idx as u64]);
                let data: Vec<[u8; ENTRY_BYTES]> =
                    (0..n).map(|i| spec.entry_at(alloc_seed, i, 0.5)).collect();
                pool.write_entries(alloc, 0, &data).expect("batch write");
                let mut out = vec![[0u8; ENTRY_BYTES]; n as usize];
                pool.read_entries(alloc, 0, &mut out).expect("batch read");
                assert_eq!(out, data, "{}: lossless under concurrency", spec.name);
            });
        }
    });
    assert!(
        pool.effective_ratio() > 1.5,
        "356.sp compresses well pooled"
    );
    let stats = pool.drain();
    assert_eq!(
        stats.total_accesses(),
        2 * pool.logical_bytes() / ENTRY_BYTES as u64,
        "one write + one read per entry"
    );
}

/// The static buddy fraction predicted by the profiler matches what the
/// functional device actually observes when the data is stored.
#[test]
fn profiler_prediction_matches_device_behavior() {
    let bench = test_bench("354.cg");
    let profiles = profile_benchmark(&bench, 2048, 5);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());

    let mut device = BuddyDevice::new(DeviceConfig {
        device_capacity: 64 << 20,
        carve_out_factor: 3,
    });
    let layout = bench.allocation_layout();
    let mut predicted = 0.0;
    let mut total = 0.0;
    for (idx, ((spec, _), choice)) in layout.iter().zip(outcome.choices.iter()).enumerate() {
        let n = 512u64;
        let alloc = device.alloc(spec.name, n, choice.target).expect("fits");
        let alloc_seed = buddy_compression::workloads::entry_gen::mix(&[5, idx as u64]);
        for i in 0..n {
            device
                .write_entry(alloc, i, &spec.entry_at(alloc_seed, i, 0.5))
                .expect("write");
        }
        predicted += n as f64 * choice.overflow_frac;
        total += n as f64;
    }
    let predicted_frac = predicted / total;
    let measured = device.stats().buddy_access_fraction();
    assert!(
        (measured - predicted_frac).abs() < 0.05,
        "predicted {predicted_frac:.3} vs measured {measured:.3}"
    );
}

/// BPC really compresses the synthetic suite to the paper's Figure 3 level.
#[test]
fn suite_compression_matches_paper_shape() {
    let codec = BitPlane::new();
    let mut hpc = Vec::new();
    let mut dl = Vec::new();
    for mut bench in all_benchmarks() {
        bench.scale = Scale::test();
        let profiles = profile_benchmark_at(&bench, 0.5, 1024, 7);
        let mut bytes = 0.0;
        let mut entries = 0.0;
        for p in &profiles {
            bytes += p.entries as f64 * 128.0 / p.histogram.compression_ratio();
            entries += p.entries as f64;
        }
        let ratio = entries * 128.0 / bytes;
        if bench.suite.is_hpc() {
            hpc.push(ratio);
        } else {
            dl.push(ratio);
        }
    }
    let hpc = geomean(hpc);
    let dl = geomean(dl);
    assert!(
        (hpc - 2.51).abs() < 0.5,
        "HPC geomean {hpc:.2} vs paper 2.51"
    );
    assert!((dl - 1.85).abs() < 0.35, "DL geomean {dl:.2} vs paper 1.85");
    // Sanity: the codec itself is lossless on a workload entry.
    let bench = test_bench("351.palm");
    let spec = &bench.allocations[0];
    let entry = spec.entry_at(1, 0, 0.5);
    assert_eq!(codec.decompress(&codec.compress(&entry)).unwrap(), entry);
}

/// Final-design targets dominate the naive single-target policy on the
/// (compression ratio, buddy traffic) tradeoff at suite level.
#[test]
fn final_policy_dominates_naive() {
    let mut final_ratios = Vec::new();
    let mut naive_ratios = Vec::new();
    let mut final_buddy = 0.0;
    let mut naive_buddy = 0.0;
    for mut bench in all_benchmarks() {
        bench.scale = Scale::test();
        let profiles = profile_benchmark(&bench, 512, 11);
        let config = ProfileConfig::default();
        let fin = choose_targets(&profiles, &config);
        let naive = choose_naive(&profiles, &config);
        final_ratios.push(fin.device_compression_ratio());
        naive_ratios.push(naive.device_compression_ratio());
        final_buddy += fin.static_buddy_fraction();
        naive_buddy += naive.static_buddy_fraction();
    }
    assert!(geomean(final_ratios) > geomean(naive_ratios) - 0.05);
    assert!(
        final_buddy < naive_buddy * 0.6,
        "final must cut buddy traffic substantially"
    );
}

/// The performance simulator runs the whole suite in every mode without
/// panicking and produces self-consistent statistics.
#[test]
fn simulator_smoke_over_suite() {
    for mut bench in all_benchmarks() {
        bench.scale = Scale::test();
        let profiles = profile_benchmark(&bench, 256, 13);
        let outcome = choose_targets(&profiles, &ProfileConfig::default());
        let gpu = GpuConfig::p100();
        let exec = ExecConfig::from_profile(&gpu, bench.access.mlp, 30.0, 5_000);
        for mode in [
            MemoryMode::Uncompressed,
            MemoryMode::BandwidthCompressed,
            MemoryMode::Buddy,
        ] {
            let stats = match mode {
                MemoryMode::Uncompressed => {
                    let layout = BenchmarkLayout::uncompressed(&bench);
                    Engine::new(gpu, exec, mode, Fidelity::Fast, &layout)
                        .run(&mut benchmark_requests(&bench, 13))
                }
                _ => {
                    let layout = BenchmarkLayout::new(&bench, &outcome, 0.9, 13);
                    Engine::new(gpu, exec, mode, Fidelity::Fast, &layout)
                        .run(&mut benchmark_requests(&bench, 13))
                }
            };
            assert_eq!(stats.accesses, 5_000, "{}: all accesses retire", bench.name);
            assert!(stats.cycles > 0.0);
            assert_eq!(stats.reads + stats.writes, stats.accesses);
            if mode != MemoryMode::Buddy {
                assert_eq!(
                    stats.buddy_accesses, 0,
                    "{}: only Buddy overflows",
                    bench.name
                );
                assert_eq!(stats.md_misses, 0);
            }
        }
    }
}

/// Zero-page targets survive end to end: a mostly-zero allocation costs
/// 8 B/entry on the device and reads back losslessly.
#[test]
fn zero_page_pipeline() {
    let bench = test_bench("352.ep");
    let profiles = profile_benchmark(&bench, 1024, 17);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());
    // results_zero is eligible for 16x but may be demoted to respect the
    // carve-out bound; either way it must compress at 4x or better.
    let choice = outcome
        .choices
        .iter()
        .find(|c| c.name == "results_zero")
        .expect("allocation present");
    assert!(
        choice.target == TargetRatio::ZeroPage16 || choice.target == TargetRatio::R4,
        "zeros compress aggressively, got {}",
        choice.target
    );
    assert!(
        outcome.device_compression_ratio() <= 4.0 + 1e-9,
        "carve-out bound"
    );
    assert!(
        outcome.device_compression_ratio() > 2.5,
        "352.ep compresses well"
    );
}
