//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §5 for the experiment index).
//!
//! Each figure has a binary (`cargo run -p buddy-bench --release --bin
//! fig11`) and all of them run together via `--bin reproduce-all`. Every
//! harness prints an aligned table with the paper's reported numbers next
//! to the measured ones and writes a CSV under `results/`. Pass `--quick`
//! for a reduced smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod adaptfig;
pub mod capacity;
pub mod churnfig;
pub mod dlfig;
pub mod obsfig;
pub mod performance;
pub mod poolfig;
pub mod report;
pub mod tables;
pub mod tenantfig;
pub mod umfig;

pub use report::RunConfig;

use std::io;

/// Runs every table and figure in order (the `reproduce-all` binary).
pub fn reproduce_all(cfg: &RunConfig) -> io::Result<()> {
    tables::table1(cfg)?;
    tables::table2(cfg)?;
    capacity::fig03(cfg)?;
    performance::fig05b(cfg)?;
    capacity::fig06(cfg)?;
    capacity::fig07(cfg)?;
    capacity::fig08(cfg)?;
    capacity::fig09(cfg)?;
    performance::fig10(cfg)?;
    performance::fig11(cfg)?;
    umfig::fig12(cfg)?;
    dlfig::fig13a(cfg)?;
    dlfig::fig13b(cfg)?;
    dlfig::fig13c(cfg)?;
    dlfig::fig13d(cfg)?;
    ablation::ablation(cfg)?;
    poolfig::pool_throughput(cfg)?;
    adaptfig::adaptive_retarget(cfg)?;
    churnfig::churn(cfg)?;
    tenantfig::tenancy(cfg)?;
    tenantfig::service_report(cfg)?;
    println!(
        "\nAll tables and figures regenerated into {:?}.",
        cfg.results_dir
    );
    Ok(())
}
