//! The drift workload: allocations whose compressibility shifts across
//! execution phases, built to give an online re-targeting policy something
//! to chase.
//!
//! The paper observes both directions of drift: 355.seismic starts
//! mostly-zero and densifies toward 2× as the wavefield fills in (§3.1),
//! while DL memory pools churn entries under a stable aggregate (Figure 8).
//! A profiling pass that merges snapshots from the *whole* run (§3.5)
//! necessarily picks one conservative compromise target for a drifting
//! allocation; an online policy can track each phase instead. This module
//! packages three allocations that span the interesting cases:
//!
//! * **`sparsifying`** — starts dense (2-sector entries), zeroes out to
//!   90% by the end of the run: the static compromise is 2×, online
//!   re-targeting can promote to 4× once the zeros dominate.
//! * **`densifying`** — the 355.seismic shape: 90% zero at the start,
//!   dense by the end: online re-targeting rides 4× through the early
//!   phases and demotes to the static 2× only when the data demands it.
//! * **`steady`** — a stable 80/20 one-/two-sector mix: the control arm.
//!   A correct policy with hysteresis never migrates it.
//!
//! Contents come from the same measured-compressibility entry generators
//! as the benchmark suite ([`AllocationSpec::entry_at`] with the paper's
//! [`TemporalDrift::ZeroFill`] machinery), so "compressibility at phase
//! *p*" is real bytes through the real compressor, not an annotation.

use crate::entry_gen::MixtureProfile;
use crate::spec::{AllocationSpec, SpatialPattern, TemporalDrift};
use bpc::SizeClass;

/// Phases the drift study samples by default (the paper's temporal studies
/// use ten snapshots across a run).
pub const DRIFT_PHASES: usize = 10;

/// The three drift-study allocations (see the module docs). Equal
/// footprint shares, speckled layout, nonzero bodies sized to two sectors
/// (`B64`) so that every standard target's overflow fraction is exactly
/// the nonzero fraction the phase dictates.
pub fn drift_allocations() -> Vec<AllocationSpec> {
    vec![
        AllocationSpec {
            name: "sparsifying",
            footprint_frac: 1.0 / 3.0,
            profile: MixtureProfile::from_class_weights(&[(SizeClass::B64, 1.0)]),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::ZeroFill {
                start_zero: 0.05,
                end_zero: 0.90,
            },
        },
        AllocationSpec {
            name: "densifying",
            footprint_frac: 1.0 / 3.0,
            profile: MixtureProfile::from_class_weights(&[(SizeClass::B64, 1.0)]),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::ZeroFill {
                start_zero: 0.90,
                end_zero: 0.05,
            },
        },
        AllocationSpec {
            name: "steady",
            footprint_frac: 1.0 / 3.0,
            profile: MixtureProfile::from_class_weights(&[
                (SizeClass::B32, 0.8),
                (SizeClass::B64, 0.2),
            ]),
            pattern: SpatialPattern::Speckled,
            drift: TemporalDrift::Stable,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry_gen::EntryClass;

    fn zero_fraction(spec: &AllocationSpec, phase: f64) -> f64 {
        let n = 2000u64;
        let zeros = (0..n)
            .filter(|&i| spec.class_at(7, i, phase) == EntryClass::Zero)
            .count();
        zeros as f64 / n as f64
    }

    #[test]
    fn drift_directions_are_as_documented() {
        let specs = drift_allocations();
        let by_name = |name: &str| specs.iter().find(|s| s.name == name).unwrap();

        let sparsifying = by_name("sparsifying");
        assert!(zero_fraction(sparsifying, 0.0) < 0.10);
        assert!(zero_fraction(sparsifying, 1.0) > 0.85);

        let densifying = by_name("densifying");
        assert!(zero_fraction(densifying, 0.0) > 0.85);
        assert!(zero_fraction(densifying, 1.0) < 0.10);

        let steady = by_name("steady");
        assert_eq!(zero_fraction(steady, 0.0), 0.0);
        assert_eq!(zero_fraction(steady, 1.0), 0.0);
    }

    #[test]
    fn drift_is_progressive_per_entry() {
        // ZeroFill keys each entry on a stable draw: an entry of the
        // densifying allocation that has filled in never reverts to zero.
        let specs = drift_allocations();
        let densifying = specs.iter().find(|s| s.name == "densifying").unwrap();
        for i in 0..200u64 {
            let mut was_nonzero = false;
            for step in 0..=10 {
                let phase = step as f64 / 10.0;
                let nonzero = densifying.class_at(3, i, phase) != EntryClass::Zero;
                if was_nonzero {
                    assert!(nonzero, "entry {i} reverted at phase {phase}");
                }
                was_nonzero |= nonzero;
            }
        }
    }

    #[test]
    fn names_are_unique_and_fracs_normalize() {
        let specs = drift_allocations();
        assert_eq!(specs.len(), 3);
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 3);
        let total: f64 = specs.iter().map(|s| s.footprint_frac).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
