//! Coverage for the `examples/` directory.
//!
//! All seven examples are compiled as part of `cargo test` / `cargo build
//! --examples` (compilation is the coverage for the two long-running
//! sweeps); `quickstart`, `pool_replay`, `adaptive_retarget`,
//! `churn_lifecycle` and `tenant_service` are additionally *executed*
//! here — all are test-scale configurations that finish in well under a
//! second.

use std::path::PathBuf;
use std::process::Command;

/// Locates a compiled example binary next to the test executable
/// (`target/<profile>/examples/<name>`); examples are always built before
/// integration tests run.
fn example_bin(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop(); // deps/
    path.pop(); // <profile>/
    path.push("examples");
    path.push(name);
    path
}

#[test]
fn quickstart_example_runs_and_reports_compression() {
    let bin = example_bin("quickstart");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin).output().expect("quickstart spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "quickstart failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example walks profile → choose target → device round-trip and
    // prints each stage; spot-check the load-bearing lines.
    assert!(
        stdout.contains("profiled 4096 entries"),
        "missing profile line:\n{stdout}"
    );
    assert!(
        stdout.contains("profiler chose"),
        "missing target-choice line:\n{stdout}"
    );
    assert!(
        stdout.contains("device ratio"),
        "missing device-stats line:\n{stdout}"
    );
}

#[test]
fn pool_replay_example_runs_and_reports_throughput() {
    let bin = example_bin("pool_replay");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin).output().expect("pool_replay spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "pool_replay failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // 4 clients × 128 batches × 32 entries, all accounted for.
    assert!(
        stdout.contains("replayed 16384 entries in 512 batches from 4 clients over 4 shards"),
        "missing replay accounting line:\n{stdout}"
    );
    assert!(
        stdout.contains("merged traffic: 16384 accesses"),
        "missing merged-stats line:\n{stdout}"
    );
    assert!(
        stdout.contains("shard 3:"),
        "missing per-shard occupancy lines:\n{stdout}"
    );
}

#[test]
fn adaptive_retarget_example_migrates_and_verifies() {
    let bin = example_bin("adaptive_retarget");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin)
        .output()
        .expect("adaptive_retarget spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "adaptive_retarget failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example walks drift → policy recommendation → migration →
    // byte-identical read-back; spot-check each stage.
    assert!(
        stdout.contains("policy recommends 2x"),
        "missing recommendation line:\n{stdout}"
    );
    assert!(
        stdout.contains("retargeted 4x -> 2x"),
        "missing migration line:\n{stdout}"
    );
    assert!(
        stdout.contains("read-back verified: 4096/4096 entries byte-identical"),
        "missing verification line:\n{stdout}"
    );
}

#[test]
fn churn_lifecycle_example_reclaims_and_reports() {
    let bin = example_bin("churn_lifecycle");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin).output().expect("churn_lifecycle spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "churn_lifecycle failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example walks churn → drain → stale-handle pin → full-capacity
    // re-allocation; spot-check each stage.
    assert!(
        stdout.contains("over 8 iterations"),
        "missing churn accounting line:\n{stdout}"
    );
    assert!(
        stdout.contains("after the final backward pass: 0 B used"),
        "missing leak-freedom line:\n{stdout}"
    );
    assert!(
        stdout.contains("BadAllocation (generational ids)"),
        "missing stale-handle line:\n{stdout}"
    );
    assert!(
        stdout.contains("succeeded after churn"),
        "missing coalescing line:\n{stdout}"
    );
}

#[test]
fn tenant_service_example_enforces_and_accounts() {
    let bin = example_bin("tenant_service");
    assert!(
        bin.exists(),
        "{} not found — examples should be built alongside tests",
        bin.display()
    );
    let output = Command::new(&bin).output().expect("tenant_service spawns");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "tenant_service failed ({}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status
    );
    // The example walks quota admission → demotion → rejection →
    // cross-tenant denial → transfer + stale handle → ledger; spot-check
    // each stage.
    assert!(
        stdout.contains("job-3: demoted to R4"),
        "missing demotion line:\n{stdout}"
    );
    assert!(
        stdout.contains("job-4: rejected"),
        "missing rejection line:\n{stdout}"
    );
    assert!(
        stdout.contains("cross-tenant free denied"),
        "missing denial line:\n{stdout}"
    );
    assert!(
        stdout.contains("transfer accepted after retargeting the model down"),
        "missing transfer line:\n{stdout}"
    );
    assert!(
        stdout.contains("demotions 1 denials 1"),
        "missing ledger accounting:\n{stdout}"
    );
}

#[test]
fn remaining_examples_are_present_and_compiled() {
    for name in ["dl_batch_scaling", "hpc_oversubscription"] {
        let bin = example_bin(name);
        assert!(
            bin.exists(),
            "{} not found — `cargo build --examples` must cover it",
            bin.display()
        );
    }
}
