//! Pool throughput: multi-tenant scaling of the compressed data path.
//!
//! The paper's §5 performance model is about *aggregate* traffic — every SM
//! issues entry accesses concurrently. This harness measures that regime
//! directly: a sharded [`BuddyPool`] is driven by `N` concurrent client
//! threads replaying the same workload trace (same master seed, same
//! per-client splitting rule), sweeping shard count × client count × codec.
//! Each cell reports aggregate throughput (entries/s, logical GB/s) and
//! per-batch latency percentiles from the `pool::loadgen` replay harness,
//! plus the scaling factor against the 1-shard/1-client cell of the same
//! codec.
//!
//! The sweep carries two kinds of cells. *Trace-mix* cells replay the
//! profile's own read/write decisions; *read-heavy* cells force a 95/5
//! read mix and run **twice** — once on the lock-free epoch-snapshot read
//! path and once on the explicitly-locked mutex baseline
//! (`read_entries_collect_locked`) — so the snapshot path's speedup is a
//! CSV column, not a claim.
//!
//! Wall-clock scaling depends on the machine: with `P` hardware threads,
//! the `min(shards, clients, P)` parallel compression streams are where the
//! speedup comes from, so the summary prints the detected parallelism next
//! to the measured scaling factor.

use crate::obsfig::{breakdown_row, write_breakdown, MetricsEmitter};
use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::bpc::CodecKind;
use buddy_compression::buddy_core::{DeviceConfig, TargetRatio};
use buddy_compression::buddy_obs::trace;
use buddy_compression::buddy_pool::loadgen::{replay, LoadReport, LoadgenConfig};
use buddy_compression::buddy_pool::{BuddyPool, PoolConfig};
use buddy_compression::workloads::by_name;
use std::io;

/// The benchmark whose access profile drives the replay (a SpecAccel
/// stencil with a realistic read/write mix).
const TRACE_BENCH: &str = "356.sp";

/// Entries per batched operation.
const BATCH: usize = 64;

/// Read percentage of the read-heavy cells: the serving regime the
/// epoch-snapshot redesign targets (reads dominate, writes trickle).
const READ_HEAVY_PCT: u8 = 95;

/// One point of the sweep grid: the structural axes, the churn/retarget
/// activity knobs, and the read-mix/read-path configuration.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Shard count of the pool under test.
    pub shards: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Churn period in batches (`0` = off), forwarded to [`LoadgenConfig`].
    pub churn_every: u64,
    /// Re-targeting period in batches (`0` = off), forwarded likewise.
    pub retarget_every: u64,
    /// `None` replays the trace's own read/write mix; `Some(p)` forces a
    /// deterministic `p`% read mix.
    pub read_pct: Option<u8>,
    /// Serve reads through the explicitly-locked mutex baseline instead of
    /// the epoch-snapshot path (the before/after comparison axis).
    pub locked_reads: bool,
}

impl CellSpec {
    /// A trace-mix cell on the snapshot path.
    const fn trace_mix(shards: usize, clients: usize, churn: u64, retarget: u64) -> Self {
        Self {
            shards,
            clients,
            churn_every: churn,
            retarget_every: retarget,
            read_pct: None,
            locked_reads: false,
        }
    }

    /// A 95/5 read-heavy cell on the chosen read path.
    const fn read_heavy(shards: usize, clients: usize, locked: bool) -> Self {
        Self {
            shards,
            clients,
            churn_every: 0,
            retarget_every: 0,
            read_pct: Some(READ_HEAVY_PCT),
            locked_reads: locked,
        }
    }
}

/// One measured cell of the sweep.
pub struct Cell {
    /// Codec under test.
    pub codec: CodecKind,
    /// Loadgen report for this (shards, clients) point.
    pub report: LoadReport,
    /// End-of-replay pool fragmentation (`BuddyPool::fragmentation`).
    pub fragmentation: f64,
    /// End-of-replay largest contiguous free device region, in bytes.
    pub largest_free_region: u64,
}

/// Runs one cell of the sweep: builds a pool sized to the clients'
/// footprint and replays the trace through it with the spec's mix and
/// read path.
pub fn measure(
    codec: CodecKind,
    spec: CellSpec,
    entries_per_client: u64,
    batches_per_client: u64,
    seed: u64,
) -> Cell {
    let profile = by_name(TRACE_BENCH).expect("trace benchmark exists").access; // lint-allow(no-unwrap): the trace benchmark is compiled into the suite
                                                                                // Size shards to the replay footprint (with 2× headroom) instead of a
                                                                                // flat multi-MB capacity: the backing arrays are zero-initialized, and
                                                                                // across a 24-cell sweep a fixed large capacity would spend more time
                                                                                // in memset than in compression.
    let clients_per_shard = spec.clients.div_ceil(spec.shards) as u64;
    let target = TargetRatio::R2;
    let device_need =
        clients_per_shard * entries_per_client * target.device_bytes_per_entry() as u64;
    let pool = BuddyPool::new(PoolConfig {
        shards: spec.shards,
        shard_config: DeviceConfig {
            device_capacity: (device_need * 2).max(1 << 20),
            carve_out_factor: 3,
        },
        codec,
    });
    let cfg = LoadgenConfig {
        clients: spec.clients,
        batches_per_client,
        batch_entries: BATCH,
        entries_per_client,
        target,
        seed,
        retarget_every: spec.retarget_every,
        churn_every: spec.churn_every,
        read_pct: spec.read_pct,
        locked_reads: spec.locked_reads,
    };
    let report = replay(&pool, profile, &cfg).expect("sized pool hosts every client"); // lint-allow(no-unwrap): the pool is sized with 2x headroom for every client
    Cell {
        codec,
        report,
        fragmentation: pool.fragmentation(),
        largest_free_region: pool.largest_free_region(),
    }
}

/// The sweep grid: trace-mix scaling cells, one churn + retarget cell, then
/// the read-heavy snapshot-vs-locked pairs. Each pair shares its shard and
/// client counts so the two rows differ only in which read path served the
/// 95% reads.
fn grid(quick: bool) -> Vec<CellSpec> {
    if quick {
        vec![
            CellSpec::trace_mix(1, 1, 0, 0),
            CellSpec::trace_mix(2, 2, 0, 0),
            CellSpec::trace_mix(4, 4, 0, 0),
            CellSpec::trace_mix(2, 2, 8, 4),
            CellSpec::read_heavy(4, 4, false),
            CellSpec::read_heavy(4, 4, true),
        ]
    } else {
        vec![
            CellSpec::trace_mix(1, 1, 0, 0),
            CellSpec::trace_mix(1, 4, 0, 0),
            CellSpec::trace_mix(2, 2, 0, 0),
            CellSpec::trace_mix(4, 1, 0, 0),
            CellSpec::trace_mix(4, 4, 0, 0),
            CellSpec::trace_mix(8, 8, 0, 0),
            CellSpec::trace_mix(4, 4, 8, 4),
            CellSpec::read_heavy(4, 4, false),
            CellSpec::read_heavy(4, 4, true),
            CellSpec::read_heavy(4, 16, false),
            CellSpec::read_heavy(4, 16, true),
            CellSpec::read_heavy(4, 64, false),
            CellSpec::read_heavy(4, 64, true),
        ]
    }
}

/// Runs the shard × client × codec throughput sweep (the `pool-throughput`
/// binary; also part of `reproduce-all`).
pub fn pool_throughput(cfg: &RunConfig) -> io::Result<()> {
    // Equal work per cell so entries/s columns are directly comparable.
    let total_entries = cfg.scaled(2_000_000);
    let entries_per_client = if cfg.quick { 1024 } else { 4096 };
    let codecs: Vec<CodecKind> = if cfg.quick {
        vec![cfg.codec]
    } else {
        CodecKind::ALL.to_vec()
    };

    let header = [
        "codec",
        "shards",
        "clients",
        "read_pct",
        "read_path",
        "entries",
        "errored_batches",
        "elapsed_ms",
        "entries_per_s",
        "logical_gb_per_s",
        "p50_us",
        "p95_us",
        "p99_us",
        "p999_us",
        "max_us",
        "buddy_access_frac",
        "churn_cycles",
        "retargets",
        "fragmentation",
        "largest_free_mb",
        "scaling_vs_1s1c",
    ];
    let emitter = MetricsEmitter::start(cfg);
    let entries_counter = emitter
        .registry()
        .counter("pool_entries_total", "entries moved across all sweep cells");
    let latency_metric = emitter.registry().histogram(
        "pool_batch_latency_ns",
        "per-batch replay latency across all sweep cells",
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut breakdown: Vec<Vec<String>> = Vec::new();
    let mut headline_scaling = None;
    // (shards, clients) -> (snapshot entries/s, locked entries/s) for the
    // default codec's read-heavy pairs.
    let mut read_pairs: Vec<(usize, usize, Option<f64>, Option<f64>)> = Vec::new();
    for &codec in &codecs {
        let mut baseline = None;
        for &spec in &grid(cfg.quick) {
            let batches_per_client = (total_entries / (spec.clients as u64 * BATCH as u64)).max(1);
            let span_before = trace::totals();
            let cell = measure(
                codec,
                spec,
                entries_per_client,
                batches_per_client,
                cfg.seed,
            );
            let span_delta = trace::totals().since(&span_before);
            breakdown.push(breakdown_row(
                "pool_throughput",
                &codec.to_string(),
                spec.shards,
                spec.clients,
                &span_delta,
            ));
            let r = &cell.report;
            // Only churn can legitimately error a batch (a freed-and-
            // reallocated handle racing a client); every other cell must
            // complete every batch or the throughput columns lie.
            if spec.churn_every == 0 {
                assert_eq!(
                    r.errored_batches, 0,
                    "non-churn cell {spec:?} dropped batches"
                );
            }
            entries_counter.add(r.entries_processed);
            latency_metric.absorb(&r.latency_hist);
            let baseline_eps = *baseline.get_or_insert(r.entries_per_sec);
            let scaling = r.entries_per_sec / baseline_eps;
            if codec == cfg.codec
                && spec.shards >= 4
                && spec.clients >= 4
                && spec.churn_every == 0
                && spec.read_pct.is_none()
            {
                headline_scaling = Some(scaling);
            }
            if codec == cfg.codec && spec.read_pct.is_some() {
                let entry = read_pairs
                    .iter_mut()
                    .find(|(s, c, _, _)| *s == spec.shards && *c == spec.clients);
                let entry = match entry {
                    Some(e) => e,
                    None => {
                        read_pairs.push((spec.shards, spec.clients, None, None));
                        read_pairs.last_mut().expect("just pushed") // lint-allow(no-unwrap): just pushed
                    }
                };
                if spec.locked_reads {
                    entry.3 = Some(r.entries_per_sec);
                } else {
                    entry.2 = Some(r.entries_per_sec);
                }
            }
            rows.push(vec![
                codec.to_string(),
                spec.shards.to_string(),
                spec.clients.to_string(),
                spec.read_pct
                    .map_or_else(|| "trace".to_string(), |p| p.to_string()),
                if spec.locked_reads {
                    "locked"
                } else {
                    "snapshot"
                }
                .to_string(),
                r.entries_processed.to_string(),
                r.errored_batches.to_string(),
                format!("{:.1}", r.elapsed.as_secs_f64() * 1e3),
                format!("{:.0}", r.entries_per_sec),
                f3(r.logical_gb_per_sec),
                f3(r.latency.p50_us),
                f3(r.latency.p95_us),
                f3(r.latency.p99_us),
                f3(r.latency.p999_us),
                f3(r.latency.max_us),
                pct(r.stats.buddy_access_fraction()),
                r.churn_cycles.to_string(),
                r.stats.retargets.to_string(),
                f3(cell.fragmentation),
                f3(cell.largest_free_region as f64 / (1 << 20) as f64),
                f3(scaling),
            ]);
        }
    }
    print_table(
        &format!("Pool throughput: shards × clients × codec ({TRACE_BENCH} trace)"),
        &header,
        &rows,
    );
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if let Some(scaling) = headline_scaling {
        println!(
            "  {} scaling 1 shard/1 client -> >=4 shards/>=4 clients: {scaling:.2}x \
             ({parallelism} hardware threads available)",
            cfg.codec
        );
        println!("  Parallel speedup tracks min(shards, clients, hardware threads); on a");
        println!("  single-core host the sweep still validates the concurrent data path.");
    }
    for (shards, clients, snapshot, locked) in &read_pairs {
        if let (Some(snap), Some(lock)) = (snapshot, locked) {
            println!(
                "  {} read-heavy ({READ_HEAVY_PCT}/5) {shards} shards x {clients} clients: \
                 snapshot {snap:.0} entries/s vs locked {lock:.0} entries/s ({:.2}x)",
                cfg.codec,
                snap / lock
            );
        }
    }
    write_csv(
        &cfg.results_dir,
        &cfg.tagged("pool_throughput"),
        &header,
        &rows,
    )?;
    // Truncate-write: pool-throughput runs first in reproduce-all, so each
    // run starts the shared breakdown artifact fresh; later harnesses
    // append. With obs-trace off the rows are structurally identical but
    // all-zero (trace_enabled=false) — the artifact shape is stable.
    let breakdown_path = write_breakdown(cfg, &breakdown)?;
    if trace::is_enabled() {
        println!("  span breakdown (lock wait / codec / IO per cell) -> {breakdown_path:?}");
    } else {
        println!(
            "  span breakdown written with zeros ({breakdown_path:?}); rebuild with \
             --features obs-trace for real attribution"
        );
    }
    if let Some((prom, csv)) = emitter.finish()? {
        println!("  metrics -> {prom:?} and {csv:?}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cell_is_consistent() {
        let cell = measure(CodecKind::Bpc, CellSpec::trace_mix(2, 2, 0, 0), 256, 16, 11);
        let r = &cell.report;
        assert_eq!(r.shards, 2);
        assert_eq!(r.clients, 2);
        assert_eq!(r.entries_processed, 2 * 16 * BATCH as u64);
        assert_eq!(r.stats.total_accesses(), r.entries_processed);
        assert!(r.entries_per_sec > 0.0);
        assert_eq!(r.churn_cycles, 0);
        assert_eq!(r.errored_batches, 0);
        assert!((0.0..=1.0).contains(&cell.fragmentation));
        assert!(cell.largest_free_region > 0, "pool has 2x headroom free");
    }

    #[test]
    fn churn_and_retarget_activity_reaches_the_report() {
        // The grid's churn cell must produce nonzero churn/retarget columns;
        // this is the plumbing the CSV relies on.
        let cell = measure(CodecKind::Bpc, CellSpec::trace_mix(2, 2, 8, 4), 256, 16, 11);
        let r = &cell.report;
        assert!(r.churn_cycles > 0, "churn_every=8 over 16 batches cycles");
        assert!(r.stats.retargets > 0, "retarget_every=4 migrates");
    }

    #[test]
    fn read_heavy_pair_does_identical_work_on_both_paths() {
        // The snapshot and locked rows of a read-heavy pair must replay
        // the same deterministic operation stream — same traffic, zero
        // errors — or the speedup column compares different work.
        let snap = measure(
            CodecKind::Bpc,
            CellSpec::read_heavy(2, 2, false),
            256,
            16,
            11,
        );
        let lock = measure(
            CodecKind::Bpc,
            CellSpec::read_heavy(2, 2, true),
            256,
            16,
            11,
        );
        assert_eq!(
            snap.report.stats.total_accesses(),
            lock.report.stats.total_accesses()
        );
        assert_eq!(snap.report.entries_processed, lock.report.entries_processed);
        assert_eq!(snap.report.errored_batches, 0);
        assert_eq!(lock.report.errored_batches, 0);
        // 95% reads: reads dominate writes in the merged stats.
        let s = &snap.report.stats;
        let reads = s.reads_device_only + s.reads_with_buddy;
        let writes = s.writes_device_only + s.writes_with_buddy;
        assert!(
            reads > writes,
            "read-heavy mix: {reads} reads vs {writes} writes"
        );
    }

    #[test]
    fn harness_writes_the_csv_artifact() {
        let dir = std::env::temp_dir().join("buddy-bench-poolfig");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = RunConfig {
            quick: true,
            results_dir: dir.clone(),
            seed: 5,
            ..Default::default()
        };
        pool_throughput(&cfg).unwrap();
        let csv = std::fs::read_to_string(dir.join("pool_throughput.csv")).unwrap();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("codec,shards,clients,read_pct,read_path"));
        for col in [
            "errored_batches",
            "churn_cycles",
            "retargets",
            "fragmentation",
        ] {
            assert!(header.contains(col), "header is missing {col}");
        }
        // Quick grid: (1,1), (2,2), (4,4), the churn cell, and the
        // read-heavy snapshot/locked pair, default codec.
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows.iter().filter(|r| r.contains(",95,")).count(), 2);
        assert_eq!(rows.iter().filter(|r| r.contains(",locked,")).count(), 1);
        // Non-churn rows completed every batch.
        for row in &rows {
            let errored = row.split(',').nth(6).unwrap();
            let churn = row.split(',').nth(16).unwrap();
            if churn == "0" {
                assert_eq!(errored, "0", "non-churn row dropped batches: {row}");
            }
        }
    }
}
