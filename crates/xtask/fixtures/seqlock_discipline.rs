//! Known-bad corpus for the `seqlock-discipline` rule: touching a seqlock
//! sequence word with raw atomic methods must be flagged — every ordering
//! on `seq` carries model-checker evidence only through the named
//! `core::sync` helpers (`seq_acquire`/`seq_revalidate`/`seq_open`/
//! `seq_release`).
#![forbid(unsafe_code)]

use buddy_core::sync::{seq_acquire, seq_open, AtomicU64, Ordering};

fn raw_reads_are_caught(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::Acquire) // expect(seqlock-discipline)
}

fn raw_writes_are_caught(seq: &AtomicU64) {
    seq.fetch_add(1, Ordering::Release); // expect(seqlock-discipline)
    seq.store(2, Ordering::Release); // expect(seqlock-discipline)
}

fn split_over_lines_is_still_a_raw_access(seq: &AtomicU64) -> u64 {
    seq
        .swap(0, Ordering::AcqRel) // expect(seqlock-discipline)
}

fn helpers_are_the_required_shape(seq: &AtomicU64) -> u64 {
    seq_open(seq);
    seq_acquire(seq)
}

fn other_fields_are_out_of_scope(generation: &AtomicU64, sequence: &AtomicU64) -> u64 {
    generation.load(Ordering::Acquire) + sequence.load(Ordering::Acquire)
}

fn waived(seq: &AtomicU64) -> u64 {
    // lint-allow(seqlock-discipline): fixture demonstrates that a reasoned waiver suppresses
    seq.load(Ordering::Acquire)
}
