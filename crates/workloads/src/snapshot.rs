//! Memory snapshots: per-allocation compression statistics and Figure 6
//! spatial heat maps.
//!
//! The paper takes ten memory dumps over each benchmark's run and compresses
//! every 128 B entry with BPC (§3.1). We do the same over synthetic
//! allocations, with optional uniform sampling so multi-GB (scaled) images
//! can be characterized in milliseconds; generators are stationary within an
//! allocation, so a uniform sample is an unbiased estimate of the full dump.
//!
//! Capture is codec-parameterized ([`SnapshotConfig::codec`], BPC by
//! default) and runs the zero-allocation [`Codec::compress_into`] path with
//! one reused scratch buffer per capture, so characterizing a scaled image
//! costs no per-entry heap traffic.

use crate::suite::Benchmark;
use bpc::{Codec, CodecKind, CompressedBuf, SizeClass, SizeHistogram, ENTRY_BYTES};

/// Number of 128 B entries per 8 KB page — one heat-map row in Figure 6.
pub const ENTRIES_PER_PAGE: u64 = 64;

/// Per-allocation compression statistics from one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationStats {
    /// Allocation name from the spec.
    pub name: &'static str,
    /// Total entries in the (scaled) allocation.
    pub entries: u64,
    /// Entries actually compressed (≤ `entries` when sampling).
    pub sampled: u64,
    /// Size-class histogram of the sampled entries.
    pub histogram: SizeHistogram,
}

impl AllocationStats {
    /// Optimistic capacity compression ratio of this allocation (Figure 3
    /// accounting).
    pub fn compression_ratio(&self) -> f64 {
        self.histogram.compression_ratio()
    }

    /// Average compressed bytes per entry.
    pub fn avg_bytes(&self) -> f64 {
        ENTRY_BYTES as f64 / self.compression_ratio()
    }
}

/// Compression statistics for one full-memory snapshot of a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotStats {
    /// Per-allocation statistics, in allocation order.
    pub allocations: Vec<AllocationStats>,
}

impl SnapshotStats {
    /// Footprint-weighted overall compression ratio of the snapshot.
    pub fn compression_ratio(&self) -> f64 {
        let total_entries: u64 = self.allocations.iter().map(|a| a.entries).sum();
        if total_entries == 0 {
            return 1.0;
        }
        let compressed: f64 = self
            .allocations
            .iter()
            .map(|a| a.entries as f64 * a.avg_bytes())
            .sum();
        total_entries as f64 * ENTRY_BYTES as f64 / compressed
    }

    /// Merged size-class histogram weighted by allocation entry counts.
    ///
    /// Sampled histograms are scaled up to their allocation's true entry
    /// count so allocations of different sizes contribute proportionally.
    pub fn merged_histogram(&self) -> SizeHistogram {
        let mut merged = SizeHistogram::new();
        for alloc in &self.allocations {
            if alloc.sampled == 0 {
                continue;
            }
            let scale = alloc.entries as f64 / alloc.sampled as f64;
            for class in SizeClass::ALL {
                let scaled = (alloc.histogram.count(class) as f64 * scale).round() as u64;
                merged.record_n(class, scaled);
            }
        }
        merged
    }
}

/// Configuration for snapshot capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotConfig {
    /// Execution phase in `[0, 1]` (the paper takes 10 snapshots at
    /// phases 0.05, 0.15, …, 0.95).
    pub phase: f64,
    /// Seed for all data generation.
    pub seed: u64,
    /// Maximum entries to compress per allocation (uniform sampling above
    /// this). `u64::MAX` disables sampling.
    pub sample_cap: u64,
    /// Compression algorithm to characterize with (BPC by default, matching
    /// the paper; the §2.4 ablation sweeps the others).
    pub codec: CodecKind,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        Self {
            phase: 0.5,
            seed: 0xB0DD7,
            sample_cap: 8192,
            codec: CodecKind::Bpc,
        }
    }
}

/// Captures per-allocation compression statistics of `benchmark` at the
/// given phase.
pub fn capture(benchmark: &Benchmark, config: SnapshotConfig) -> SnapshotStats {
    let codec = config.codec;
    let mut scratch = CompressedBuf::new();
    let mut allocations = Vec::with_capacity(benchmark.allocations.len());
    for (alloc_idx, (spec, entries)) in benchmark.allocation_layout().into_iter().enumerate() {
        let sampled_count = entries.min(config.sample_cap);
        let mut histogram = SizeHistogram::new();
        let alloc_seed = crate::entry_gen::mix(&[config.seed, alloc_idx as u64]);
        for k in 0..sampled_count {
            // Uniform stride sampling across the allocation.
            let index = if sampled_count == entries {
                k
            } else {
                (k as u128 * entries as u128 / sampled_count as u128) as u64
            };
            let entry = spec.entry_at(alloc_seed, index, config.phase);
            histogram.record(codec.size_class_into(&entry, &mut scratch));
        }
        allocations.push(AllocationStats {
            name: spec.name,
            entries,
            sampled: sampled_count,
            histogram,
        });
    }
    SnapshotStats { allocations }
}

/// The ten evenly spaced snapshot phases the paper uses.
pub fn ten_phases() -> [f64; 10] {
    std::array::from_fn(|i| (i as f64 + 0.5) / 10.0)
}

/// A Figure 6-style spatial compressibility heat map.
///
/// Each row is one 8 KB page (64 entries); each cell is the sector count
/// (0–4) of the entry's BPC size class — cold (0) means highly compressible,
/// hot (4) means incompressible, matching the paper's blue-to-red scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of page rows.
    pub rows: usize,
    /// Cells, row-major, `rows × 64` sector counts.
    pub cells: Vec<u8>,
}

impl Heatmap {
    /// Renders the map as CSV (one page per line).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.cells.len() * 2);
        for row in self.cells.chunks(ENTRIES_PER_PAGE as usize) {
            let line: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the map as a PGM (portable graymap) image, 0 = compressible.
    pub fn to_pgm(&self) -> String {
        let mut out = format!("P2\n{} {}\n4\n", ENTRIES_PER_PAGE, self.rows);
        for row in self.cells.chunks(ENTRIES_PER_PAGE as usize) {
            let line: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&line.join(" "));
            out.push('\n');
        }
        out
    }

    /// Fraction of cells at each sector count 0..=4 (distribution summary).
    pub fn sector_distribution(&self) -> [f64; 5] {
        let mut counts = [0usize; 5];
        for &c in &self.cells {
            counts[c.min(4) as usize] += 1;
        }
        let total = self.cells.len().max(1) as f64;
        counts.map(|c| c as f64 / total)
    }
}

/// Builds the Figure 6-style heat map for a benchmark under `codec`,
/// sampling up to `max_pages` pages spread evenly across the whole address
/// space.
pub fn heatmap(
    benchmark: &Benchmark,
    codec: CodecKind,
    seed: u64,
    phase: f64,
    max_pages: usize,
) -> Heatmap {
    let mut scratch = CompressedBuf::new();
    let layout = benchmark.allocation_layout();
    let total_entries: u64 = layout.iter().map(|(_, n)| n).sum();
    let total_pages = (total_entries / ENTRIES_PER_PAGE).max(1);
    let pages = total_pages.min(max_pages as u64);

    let mut cells = Vec::with_capacity((pages * ENTRIES_PER_PAGE) as usize);
    for p in 0..pages {
        let page = p * total_pages / pages;
        let base = page * ENTRIES_PER_PAGE;
        for e in 0..ENTRIES_PER_PAGE {
            let global = base + e;
            // Locate the allocation containing this global entry index.
            let mut offset = global;
            let mut cell = 0u8;
            for (alloc_idx, (spec, n)) in layout.iter().enumerate() {
                if offset < *n {
                    let alloc_seed = crate::entry_gen::mix(&[seed, alloc_idx as u64]);
                    let entry = spec.entry_at(alloc_seed, offset, phase);
                    cell = codec.size_class_into(&entry, &mut scratch).sectors();
                    break;
                }
                offset -= n;
            }
            cells.push(cell);
        }
    }
    Heatmap {
        name: benchmark.name,
        rows: pages as usize,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::Scale;

    fn small_bench() -> Benchmark {
        let mut b = crate::suite::all_benchmarks()
            .into_iter()
            .find(|b| b.name == "370.bt")
            .expect("370.bt exists");
        b.scale = Scale::unit();
        b
    }

    #[test]
    fn capture_is_deterministic() {
        let b = small_bench();
        let cfg = SnapshotConfig {
            phase: 0.3,
            seed: 1,
            sample_cap: 512,
            codec: CodecKind::Bpc,
        };
        let a = capture(&b, cfg);
        let c = capture(&b, cfg);
        assert_eq!(a, c);
    }

    #[test]
    fn ratio_matches_nominal_within_tolerance() {
        let b = small_bench();
        let stats = capture(
            &b,
            SnapshotConfig {
                phase: 0.5,
                seed: 2,
                sample_cap: 4096,
                codec: CodecKind::Bpc,
            },
        );
        let measured = stats.compression_ratio();
        let nominal = b.nominal_ratio(0.5);
        let rel = (measured - nominal).abs() / nominal;
        assert!(
            rel < 0.25,
            "370.bt measured {measured:.2} vs nominal {nominal:.2} (rel {rel:.2})"
        );
    }

    #[test]
    fn sampling_approximates_full_capture() {
        let b = small_bench();
        let full = capture(
            &b,
            SnapshotConfig {
                phase: 0.5,
                seed: 3,
                sample_cap: u64::MAX,
                codec: CodecKind::Bpc,
            },
        );
        let sampled = capture(
            &b,
            SnapshotConfig {
                phase: 0.5,
                seed: 3,
                sample_cap: 1024,
                codec: CodecKind::Bpc,
            },
        );
        let rel = (full.compression_ratio() - sampled.compression_ratio()).abs()
            / full.compression_ratio();
        assert!(rel < 0.15, "sampled ratio diverges: {rel:.3}");
    }

    #[test]
    fn capture_is_codec_parameterized() {
        let b = small_bench();
        let mut ratios = Vec::new();
        for codec in CodecKind::ALL {
            let stats = capture(
                &b,
                SnapshotConfig {
                    phase: 0.5,
                    seed: 2,
                    sample_cap: 512,
                    codec,
                },
            );
            let ratio = stats.compression_ratio();
            assert!(ratio >= 1.0 - 1e-9, "{codec}: ratio {ratio}");
            ratios.push(ratio);
        }
        // BPC (first in ALL) must beat the zero-detector lower bound (last):
        // the codec parameter really reaches the compressor.
        assert!(
            ratios[0] > ratios[3],
            "bpc {} should beat zero-rle {}",
            ratios[0],
            ratios[3]
        );
    }

    #[test]
    fn ten_phases_are_in_unit_interval_and_sorted() {
        let phases = ten_phases();
        assert_eq!(phases.len(), 10);
        for w in phases.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(phases[0] > 0.0 && phases[9] < 1.0);
    }

    #[test]
    fn heatmap_dimensions_and_range() {
        let b = small_bench();
        let map = heatmap(&b, CodecKind::Bpc, 4, 0.5, 32);
        assert!(map.rows <= 32);
        assert_eq!(map.cells.len(), map.rows * ENTRIES_PER_PAGE as usize);
        assert!(map.cells.iter().all(|&c| c <= 4));
        let dist = map.sector_distribution();
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heatmap_export_formats() {
        let b = small_bench();
        let map = heatmap(&b, CodecKind::Bpc, 4, 0.5, 4);
        let csv = map.to_csv();
        assert_eq!(csv.lines().count(), map.rows);
        let pgm = map.to_pgm();
        assert!(pgm.starts_with("P2\n64"));
    }

    #[test]
    fn empty_snapshot_ratio_is_one() {
        let stats = SnapshotStats {
            allocations: vec![],
        };
        assert_eq!(stats.compression_ratio(), 1.0);
    }
}
