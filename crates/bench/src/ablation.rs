//! Ablation: why Bit-Plane Compression? (§2.4)
//!
//! The paper chooses BPC "after comparing several algorithms
//! [BDI, FPC, FVC, C-PACK, BPC]". This harness runs the implemented
//! candidates — BPC, BDI, FPC and the zero-detector lower bound — over the
//! full 16-benchmark suite twice:
//!
//! 1. **Capacity** — the Figure 3 size-class accounting (the optimistic
//!    upper bound the paper's §2.4 comparison uses), via the
//!    codec-parameterized snapshot sampler.
//! 2. **End-to-end** — every codec is profiled, given per-allocation
//!    targets under the Buddy Threshold, and then driven through a *real*
//!    [`BuddyDevice`] built with that codec: entries are batch-written and
//!    batch-read, and the table reports the device compression ratio next
//!    to the measured buddy-access fraction. A weaker codec does not just
//!    compress less — it overflows more entries into buddy memory, and this
//!    is where that shows up.

use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::bpc::{CodecKind, ENTRY_BYTES};
use buddy_compression::buddy_core::{choose_targets, BuddyDevice, DeviceConfig, ProfileConfig};
use buddy_compression::profile_benchmark_with;
use buddy_compression::workloads::snapshot::{capture, SnapshotConfig};
use buddy_compression::workloads::{all_benchmarks, entry_gen, geomean, Benchmark};
use std::io;

/// Entries written per allocation in the device run (per batch chunk).
const BATCH: usize = 64;

/// Figure 3-style capacity compression ratio of one benchmark under `codec`.
fn capacity_ratio(codec: CodecKind, bench: &Benchmark, seed: u64, cap: u64) -> f64 {
    capture(
        bench,
        SnapshotConfig {
            phase: 0.5,
            seed,
            sample_cap: cap,
            codec,
        },
    )
    .compression_ratio()
}

/// End-to-end device measurement for one benchmark under one codec.
///
/// Profiles with `codec`, chooses targets, then batch-writes and batch-reads
/// a subset of every allocation through a `BuddyDevice::with_codec` device.
/// Returns `(device compression ratio, measured buddy-access fraction)`.
fn device_run(codec: CodecKind, bench: &Benchmark, seed: u64, cap: u64) -> (f64, f64) {
    let profiles = profile_benchmark_with(bench, codec, cap, seed);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());

    // Size the device to exactly the capped workload (the backing arrays
    // are zero-initialized, so a flat multi-MB capacity would spend far
    // more time in memset than in compression across 16 benchmarks × 4
    // codecs). The 3× carve-out must also cover the buddy slots, which
    // dominate for zero-page targets.
    let (device_need, buddy_need) = bench
        .allocation_layout()
        .into_iter()
        .zip(outcome.choices.iter())
        .fold((0u64, 0u64), |(d, b), ((_, entries), choice)| {
            let n = entries.min(cap);
            (
                d + n * choice.target.device_bytes_per_entry() as u64,
                b + n * choice.target.buddy_bytes_per_entry() as u64,
            )
        });
    let mut device = BuddyDevice::with_codec(
        DeviceConfig {
            device_capacity: device_need.max(buddy_need.div_ceil(3)).max(1),
            carve_out_factor: 3,
        },
        codec,
    );
    let mut batch = vec![[0u8; ENTRY_BYTES]; BATCH];
    let mut readback = vec![[0u8; ENTRY_BYTES]; BATCH];
    for (idx, ((spec, entries), choice)) in bench
        .allocation_layout()
        .into_iter()
        .zip(outcome.choices.iter())
        .enumerate()
    {
        let n = entries.min(cap);
        let alloc = device
            .alloc(spec.name, n, choice.target)
            .expect("capped allocation fits the harness device"); // lint-allow(no-unwrap): harness device is sized so every capped allocation fits; failing loudly is the figure's bug alarm
        let alloc_seed = entry_gen::mix(&[seed, idx as u64]);
        let mut start = 0u64;
        while start < n {
            let len = ((n - start) as usize).min(BATCH);
            for (k, slot) in batch[..len].iter_mut().enumerate() {
                *slot = spec.entry_at(alloc_seed, start + k as u64, 0.5);
            }
            device
                .write_entries(alloc, start, &batch[..len])
                .expect("in-range batch write"); // lint-allow(no-unwrap): batch writes stay within the allocation by construction
            device
                .read_entries(alloc, start, &mut readback[..len])
                .expect("in-range batch read"); // lint-allow(no-unwrap): reads mirror the writes just issued
            assert_eq!(
                readback[..len],
                batch[..len],
                "{codec}/{}: stored streams must decode through the owning codec",
                bench.name
            );
            start += len as u64;
        }
    }
    (
        device.effective_ratio(),
        device.stats().buddy_access_fraction(),
    )
}

/// Runs the algorithm comparison over the whole suite.
pub fn ablation(cfg: &RunConfig) -> io::Result<()> {
    let cap = if cfg.quick { 512 } else { 4096 };
    let device_cap = if cfg.quick { 256 } else { 1024 };
    let codecs = CodecKind::ALL;
    let mut rows = Vec::new();
    let mut capacity_per_algo: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];
    let mut device_per_algo: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];
    let mut buddy_per_algo: Vec<Vec<f64>> = vec![Vec::new(); codecs.len()];
    for bench in all_benchmarks() {
        let mut row = vec![bench.name.to_string()];
        for (i, &codec) in codecs.iter().enumerate() {
            let capacity = capacity_ratio(codec, &bench, cfg.seed, cap);
            let (device_ratio, buddy_frac) = device_run(codec, &bench, cfg.seed, device_cap);
            capacity_per_algo[i].push(capacity);
            device_per_algo[i].push(device_ratio);
            buddy_per_algo[i].push(buddy_frac);
            row.push(f3(capacity));
            row.push(f3(device_ratio));
            row.push(pct(buddy_frac));
        }
        rows.push(row);
    }
    let header_owned: Vec<String> = std::iter::once("benchmark".to_string())
        .chain(codecs.iter().flat_map(|c| {
            [
                format!("{c}_capacity"),
                format!("{c}_device"),
                format!("{c}_buddy"),
            ]
        }))
        .collect();
    let header: Vec<&str> = header_owned.iter().map(|s| s.as_str()).collect();
    print_table(
        "Ablation: capacity vs end-to-end device compression by algorithm (§2.4)",
        &header,
        &rows,
    );
    for (i, codec) in codecs.iter().enumerate() {
        println!(
            "  {codec:<8} GMEAN capacity {:.2}  device {:.2}  mean buddy accesses {}",
            geomean(capacity_per_algo[i].iter().copied()),
            geomean(device_per_algo[i].iter().copied()),
            pct(buddy_per_algo[i].iter().sum::<f64>() / buddy_per_algo[i].len().max(1) as f64)
        );
    }
    println!("  BPC leads on the homogeneous numeric data that dominates GPU memory —");
    println!("  the paper's §2.4 rationale for choosing it. The device columns show the");
    println!("  same choice end to end: weaker codecs overflow more traffic to buddy memory.");
    write_csv(&cfg.results_dir, "ablation_algorithms", &header, &rows)?;
    Ok(())
}

/// One snapshot-based sanity hook reused by tests: BPC must dominate the
/// other general-purpose algorithms at suite level.
pub fn bpc_wins(cfg: &RunConfig) -> bool {
    let cap = 256;
    let mut bpc_r = Vec::new();
    let mut bdi_r = Vec::new();
    let mut fpc_r = Vec::new();
    for mut bench in all_benchmarks() {
        bench.scale = buddy_compression::workloads::Scale::test();
        bpc_r.push(capacity_ratio(CodecKind::Bpc, &bench, cfg.seed, cap));
        bdi_r.push(capacity_ratio(CodecKind::Bdi, &bench, cfg.seed, cap));
        fpc_r.push(capacity_ratio(CodecKind::Fpc, &bench, cfg.seed, cap));
    }
    let g = |v: &[f64]| geomean(v.iter().copied());
    g(&bpc_r) > g(&bdi_r) && g(&bpc_r) > g(&fpc_r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buddy_compression::workloads::Scale;

    fn quick_cfg() -> RunConfig {
        RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join("buddy-bench-ablation"),
            seed: 23,
            ..Default::default()
        }
    }

    #[test]
    fn bpc_dominates_the_baselines() {
        assert!(
            bpc_wins(&quick_cfg()),
            "BPC must beat BDI and FPC at suite level (§2.4)"
        );
    }

    #[test]
    fn device_run_round_trips_every_codec() {
        // The device path asserts batched read-back internally; driving one
        // benchmark through all four codecs exercises stored-stream decode
        // routed through the owning codec.
        let mut bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "370.bt")
            .expect("370.bt exists");
        bench.scale = Scale::test();
        for codec in CodecKind::ALL {
            let (ratio, buddy) = device_run(codec, &bench, 23, 128);
            assert!(ratio >= 1.0 - 1e-9, "{codec}: device ratio {ratio}");
            assert!((0.0..=1.0).contains(&buddy), "{codec}: buddy {buddy}");
        }
    }

    #[test]
    fn bpc_compresses_better_than_zero_rle_end_to_end() {
        // Only the ratio ordering is guaranteed: the profiler re-targets
        // each codec under the same Buddy Threshold, so measured buddy
        // fractions adapt per codec and carry no fixed ordering.
        let mut bench = all_benchmarks()
            .into_iter()
            .find(|b| b.name == "356.sp")
            .expect("356.sp exists");
        bench.scale = Scale::test();
        let (bpc_ratio, bpc_buddy) = device_run(CodecKind::Bpc, &bench, 7, 256);
        let (zero_ratio, zero_buddy) = device_run(CodecKind::Zero, &bench, 7, 256);
        assert!(
            bpc_ratio >= zero_ratio,
            "BPC device ratio {bpc_ratio:.2} must not lose to zero-RLE {zero_ratio:.2}"
        );
        for buddy in [bpc_buddy, zero_buddy] {
            assert!((0.0..=1.0).contains(&buddy), "buddy fraction {buddy}");
        }
    }
}
