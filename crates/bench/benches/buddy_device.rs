//! Criterion micro-benchmarks for the functional Buddy device: entry write
//! (compress + place) and read (translate + decompress) throughput per
//! target ratio, the batched entry I/O paths against their per-entry
//! equivalents, and the write path per codec.

use bpc::{CodecKind, ENTRY_BYTES};
use buddy_core::{BuddyDevice, DeviceConfig, TargetRatio};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn mixed_entry(i: u64) -> [u8; ENTRY_BYTES] {
    let mut e = [0u8; ENTRY_BYTES];
    match i % 3 {
        0 => {}
        1 => {
            for (j, c) in e.chunks_exact_mut(4).enumerate() {
                c.copy_from_slice(&(i as u32 + 3 * j as u32).to_le_bytes());
            }
        }
        _ => {
            let mut s = i;
            for b in e.iter_mut() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (s >> 33) as u8;
            }
        }
    }
    e
}

fn bench_device(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy-device");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for target in [TargetRatio::R1_33, TargetRatio::R2, TargetRatio::R4] {
        group.bench_with_input(
            BenchmarkId::new("write", target.to_string()),
            &target,
            |b, &t| {
                let mut dev = BuddyDevice::new(DeviceConfig {
                    device_capacity: 4 << 20,
                    carve_out_factor: 3,
                });
                let alloc = dev.alloc("bench", 4096, t).expect("allocation fits");
                let mut i = 0u64;
                b.iter(|| {
                    let entry = mixed_entry(i);
                    dev.write_entry(alloc, i % 4096, &entry)
                        .expect("write succeeds");
                    i += 1;
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("read", target.to_string()),
            &target,
            |b, &t| {
                let mut dev = BuddyDevice::new(DeviceConfig {
                    device_capacity: 4 << 20,
                    carve_out_factor: 3,
                });
                let alloc = dev.alloc("bench", 4096, t).expect("allocation fits");
                for i in 0..4096u64 {
                    dev.write_entry(alloc, i, &mixed_entry(i))
                        .expect("write succeeds");
                }
                let mut i = 0u64;
                b.iter(|| {
                    let entry = dev.read_entry(alloc, i % 4096).expect("read succeeds");
                    i += 1;
                    entry
                })
            },
        );
    }
    group.finish();
}

/// Batched `write_entries`/`read_entries` against per-entry loops: one
/// iteration moves a whole 256-entry chunk, so throughput is comparable.
fn bench_batched(c: &mut Criterion) {
    const CHUNK: usize = 256;
    let mut group = c.benchmark_group("buddy-device-batched");
    group.throughput(Throughput::Bytes((CHUNK * ENTRY_BYTES) as u64));
    let entries: Vec<[u8; ENTRY_BYTES]> = (0..CHUNK as u64).map(mixed_entry).collect();
    let target = TargetRatio::R2;

    group.bench_function("write-per-entry", |b| {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        });
        let alloc = dev.alloc("bench", CHUNK as u64, target).expect("fits");
        b.iter(|| {
            for (i, e) in entries.iter().enumerate() {
                dev.write_entry(alloc, i as u64, e).expect("write succeeds");
            }
        })
    });
    group.bench_function("write-batched", |b| {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        });
        let alloc = dev.alloc("bench", CHUNK as u64, target).expect("fits");
        b.iter(|| {
            dev.write_entries(alloc, 0, &entries)
                .expect("write succeeds")
        })
    });
    group.bench_function("read-per-entry", |b| {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        });
        let alloc = dev.alloc("bench", CHUNK as u64, target).expect("fits");
        dev.write_entries(alloc, 0, &entries).expect("seed data");
        b.iter(|| {
            let mut acc = 0u8;
            for i in 0..CHUNK as u64 {
                acc ^= dev.read_entry(alloc, i).expect("read succeeds")[0];
            }
            acc
        })
    });
    group.bench_function("read-batched", |b| {
        let mut dev = BuddyDevice::new(DeviceConfig {
            device_capacity: 4 << 20,
            carve_out_factor: 3,
        });
        let alloc = dev.alloc("bench", CHUNK as u64, target).expect("fits");
        dev.write_entries(alloc, 0, &entries).expect("seed data");
        let mut out = vec![[0u8; ENTRY_BYTES]; CHUNK];
        b.iter(|| {
            dev.read_entries(alloc, 0, &mut out).expect("read succeeds");
            out[0][0]
        })
    });
    group.finish();
}

/// The write path under each registered codec (2x target, mixed data).
fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy-device-codec");
    group.throughput(Throughput::Bytes(ENTRY_BYTES as u64));
    for codec in CodecKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("write", codec.to_string()),
            &codec,
            |b, &codec| {
                let mut dev = BuddyDevice::with_codec(
                    DeviceConfig {
                        device_capacity: 4 << 20,
                        carve_out_factor: 3,
                    },
                    codec,
                );
                let alloc = dev.alloc("bench", 4096, TargetRatio::R2).expect("fits");
                let mut i = 0u64;
                b.iter(|| {
                    let entry = mixed_entry(i);
                    dev.write_entry(alloc, i % 4096, &entry)
                        .expect("write succeeds");
                    i += 1;
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_device, bench_batched, bench_codecs
}
criterion_main!(benches);
