//! Pool throughput sweep: shard count × client count × codec over one
//! workload trace, reporting aggregate entries/s, logical GB/s and
//! per-batch latency percentiles. Pass `--quick` for a reduced grid,
//! `--codec <name>` to choose the headline codec, and
//! `--metrics-out <base>` to emit a Prometheus snapshot (`<base>.prom`)
//! plus the time-series sampler's CSV (`<base>.csv`). Also truncate-writes
//! `results/obs_breakdown.csv` with the per-cell span-time attribution
//! (all-zero unless built with `--features obs-trace`).

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::poolfig::pool_throughput(&cfg)
}
