//! Allocation churn at steady state: the lifecycle the paper's workloads
//! actually live in.
//!
//! DL training re-allocates its activations every iteration and HPC
//! solvers cycle scratch buffers per timestep (§4.2), so a deployed Buddy
//! device serves a working set that turns over constantly. This harness
//! drives one [`BuddyDevice`] with the `workloads::churn` trace under each
//! lifetime distribution — mixed uniform lifetimes, memoryless
//! (exponential) churn, and DL-iteration LIFO activation turnover — at
//! ~90% steady-state device pressure, and samples what a long-running
//! operator would watch:
//!
//! * **effective ratio** — compression achieved by the live working set;
//! * **fragmentation** — the fraction of free device bytes unreachable by
//!   one maximal allocation (`1 − largest_free_region/device_free`);
//! * **alloc-failure rate** — requests the device had to reject because no
//!   contiguous run could host them.
//!
//! The run ends with a drain check: freeing every survivor must return
//! the device to zero bytes used with zero fragmentation (leak freedom —
//! the same property `churn_equivalence.rs` proves exhaustively).

use crate::obsfig::MetricsEmitter;
use crate::report::{f3, pct, print_table, write_csv, RunConfig};
use buddy_compression::bpc::ENTRY_BYTES;
use buddy_compression::buddy_core::{BuddyDevice, DeviceConfig, DeviceError, TargetRatio};
use buddy_compression::workloads::entry_gen::{mix, EntryClass};
use buddy_compression::workloads::{ChurnConfig, ChurnOp, ChurnTrace, Lifetime};
use std::collections::HashMap;
use std::io;

/// Steady-state live allocations.
fn live_target(quick: bool) -> usize {
    if quick {
        24
    } else {
        48
    }
}

/// Live-set turnovers per lifetime distribution (one cycle ≈ every live
/// slot freed and replaced once).
fn cycles(quick: bool) -> u64 {
    if quick {
        12
    } else {
        60
    }
}

/// Sample rows recorded per lifetime distribution.
const SAMPLES: u64 = 6;

/// Allocation size range, in entries.
const MIN_ENTRIES: u64 = 16;
const MAX_ENTRIES: u64 = 384;

/// Entries written per allocation (a prefix — enough to give the live set
/// a real compressed footprint without dominating the run in write time).
const WRITE_PREFIX: u64 = 48;

/// The lifetime distributions swept, with their table labels. The
/// DL-iteration layer count equals the other distributions' live target,
/// so all three run at the same peak footprint.
fn distributions(live: usize) -> Vec<(&'static str, Lifetime)> {
    vec![
        (
            "uniform",
            Lifetime::Uniform {
                min_ops: 32,
                max_ops: 512,
            },
        ),
        ("exponential", Lifetime::Exponential { mean_ops: 192.0 }),
        ("dl-iteration", Lifetime::Iteration { layers: live }),
    ]
}

/// Target ratio for a churn key: a profiled-workload-like mix, heavier on
/// the compressive targets (deterministic per key).
fn target_for(key: u64, seed: u64) -> TargetRatio {
    match mix(&[seed, 0x7A26, key]) % 8 {
        0 | 1 => TargetRatio::R4,
        2..=5 => TargetRatio::R2,
        6 => TargetRatio::R1_33,
        _ => TargetRatio::ZeroPage16,
    }
}

/// Payload class for a churn key, roughly matched to its target so the
/// steady-state effective ratio reflects sensible profiling.
fn class_for(target: TargetRatio) -> EntryClass {
    match target {
        TargetRatio::ZeroPage16 => EntryClass::Zero,
        TargetRatio::R4 => EntryClass::Noisy { noise_bits: 0 },
        TargetRatio::R2 => EntryClass::Noisy { noise_bits: 10 },
        TargetRatio::R1_33 => EntryClass::Noisy { noise_bits: 19 },
        TargetRatio::R1 => EntryClass::Random,
    }
}

/// One sampled steady-state row.
pub struct ChurnRow {
    /// Lifetime-distribution label.
    pub lifetime: &'static str,
    /// Live-set turnover cycle this row samples.
    pub cycle: u64,
    /// Trace operations executed so far.
    pub ops: u64,
    /// Live allocations at the sample point.
    pub live: usize,
    /// Fraction of device capacity in use.
    pub device_used_frac: f64,
    /// Effective compression ratio of the live working set.
    pub effective_ratio: f64,
    /// Device free-space fragmentation.
    pub fragmentation: f64,
    /// Cumulative allocation attempts.
    pub alloc_attempts: u64,
    /// Cumulative allocation rejections.
    pub alloc_failures: u64,
}

impl ChurnRow {
    /// Cumulative fraction of allocation attempts rejected.
    pub fn failure_rate(&self) -> f64 {
        if self.alloc_attempts == 0 {
            return 0.0;
        }
        self.alloc_failures as f64 / self.alloc_attempts as f64
    }
}

/// Runs one lifetime distribution to steady state, sampling `SAMPLES`
/// evenly spaced cycles. Returns the rows; panics (it is a harness) if
/// the final drain finds a leak.
pub fn run_distribution(label: &'static str, lifetime: Lifetime, cfg: &RunConfig) -> Vec<ChurnRow> {
    let live = live_target(cfg.quick);
    let churn_cfg = ChurnConfig {
        live_target: live,
        min_entries: MIN_ENTRIES,
        max_entries: MAX_ENTRIES,
        lifetime,
        seed: cfg.seed,
    };
    // ~90% steady-state pressure: mean allocation footprint × live target,
    // with the device sized just above it so fragmentation and occasional
    // rejections are visible rather than engineered away.
    let mean_entries = (MIN_ENTRIES + MAX_ENTRIES) / 2;
    let mean_device_bytes = 53; // the target mix's weighted bytes/entry
    let steady = live as u64 * mean_entries * mean_device_bytes;
    let mut dev = BuddyDevice::with_codec(
        DeviceConfig {
            device_capacity: steady * 10 / 9,
            carve_out_factor: 3,
        },
        cfg.codec,
    );

    let ops_per_cycle = live as u64 * 2;
    let total_ops = cycles(cfg.quick) * ops_per_cycle;
    let sample_every = (cycles(cfg.quick) / SAMPLES).max(1);
    let mut trace = ChurnTrace::new(churn_cfg);
    let mut handles: HashMap<u64, buddy_compression::buddy_core::AllocId> = HashMap::new();
    let mut attempts = 0u64;
    let mut failures = 0u64;
    let mut rows = Vec::new();
    let mut write_buf = vec![[0u8; ENTRY_BYTES]; WRITE_PREFIX as usize];

    for op_index in 0..total_ops {
        // lint-allow(no-unwrap): churn traces are infinite by construction
        match trace.next().expect("churn traces are infinite") {
            ChurnOp::Alloc { key, entries } => {
                attempts += 1;
                let target = target_for(key, cfg.seed);
                match dev.alloc(&format!("k{key}"), entries, target) {
                    Ok(id) => {
                        // Fill a prefix with payload matched to the target.
                        let n = entries.min(WRITE_PREFIX) as usize;
                        let class = class_for(target);
                        for (i, slot) in write_buf[..n].iter_mut().enumerate() {
                            *slot = class.generate(mix(&[cfg.seed, key, i as u64]));
                        }
                        dev.write_entries(id, 0, &write_buf[..n])
                            .expect("prefix is in range"); // lint-allow(no-unwrap): the WRITE_PREFIX window is in range for every accepted alloc
                        handles.insert(key, id);
                    }
                    Err(
                        DeviceError::OutOfDeviceMemory { .. }
                        | DeviceError::OutOfBuddyMemory { .. },
                    ) => failures += 1,
                    Err(other) => panic!("unexpected alloc error: {other}"), // lint-allow(no-unwrap): any error besides out-of-memory is a harness bug; abort with its message
                }
            }
            ChurnOp::Free { key } => {
                // Keys whose alloc was rejected have no handle to free.
                if let Some(id) = handles.remove(&key) {
                    dev.free(id).expect("live handle frees cleanly"); // lint-allow(no-unwrap): the handle came from the live map
                }
            }
        }
        // Sample mid-cycle: at exact cycle boundaries the DL-iteration
        // trace has just drained its backward pass (live = 0), which is
        // the one instant that does not represent its steady footprint.
        let cycle = (op_index + 1) / ops_per_cycle + 1;
        let mid_cycle = (op_index + 1) % ops_per_cycle == ops_per_cycle / 2;
        if mid_cycle && cycle % sample_every == 0 && rows.len() < SAMPLES as usize {
            rows.push(ChurnRow {
                lifetime: label,
                cycle,
                ops: op_index + 1,
                live: dev.allocation_count(),
                device_used_frac: dev.device_used() as f64 / dev.config().device_capacity as f64,
                effective_ratio: dev.effective_ratio(),
                fragmentation: dev.fragmentation(),
                alloc_attempts: attempts,
                alloc_failures: failures,
            });
        }
    }

    // Leak freedom: drain the survivors; the device must return to empty
    // with its free space fully coalesced.
    for (_, id) in handles.drain() {
        dev.free(id).expect("survivor frees cleanly"); // lint-allow(no-unwrap): drained handles are live by construction
    }
    assert_eq!(dev.device_used(), 0, "{label}: leaked device bytes");
    assert_eq!(dev.buddy_used(), 0, "{label}: leaked buddy bytes");
    assert_eq!(
        dev.fragmentation(),
        0.0,
        "{label}: free space not coalesced"
    );
    rows
}

/// The `churn` binary: steady-state churn sweep over the lifetime
/// distributions, with a CSV artifact (also in `reproduce-all`).
pub fn churn(cfg: &RunConfig) -> io::Result<()> {
    let header = [
        "lifetime",
        "cycle",
        "ops",
        "live",
        "device_used_frac",
        "effective_ratio",
        "fragmentation",
        "alloc_attempts",
        "alloc_failures",
        "failure_rate",
    ];
    let emitter = MetricsEmitter::start(cfg);
    let attempts_counter = emitter.registry().counter(
        "churn_alloc_attempts_total",
        "allocation attempts across all lifetime distributions",
    );
    let failures_counter = emitter.registry().counter(
        "churn_alloc_failures_total",
        "allocation rejections across all lifetime distributions",
    );
    let frag_gauge = emitter.registry().gauge(
        "churn_fragmentation_ppm",
        "last sampled free-space fragmentation, parts per million",
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut finals: Vec<ChurnRow> = Vec::new();
    for (label, lifetime) in distributions(live_target(cfg.quick)) {
        let sampled = run_distribution(label, lifetime, cfg);
        if let Some(last) = sampled.last() {
            // Attempt/failure counts are cumulative within a distribution,
            // so the last sample carries the distribution's totals.
            attempts_counter.add(last.alloc_attempts);
            failures_counter.add(last.alloc_failures);
            frag_gauge.set((last.fragmentation * 1e6) as u64);
        }
        for row in &sampled {
            rows.push(vec![
                row.lifetime.to_string(),
                row.cycle.to_string(),
                row.ops.to_string(),
                row.live.to_string(),
                pct(row.device_used_frac),
                f3(row.effective_ratio),
                pct(row.fragmentation),
                row.alloc_attempts.to_string(),
                row.alloc_failures.to_string(),
                pct(row.failure_rate()),
            ]);
        }
        if let Some(last) = sampled.into_iter().last() {
            finals.push(last);
        }
    }
    print_table(
        "Allocation churn: steady state per lifetime distribution",
        &header,
        &rows,
    );
    for row in &finals {
        println!(
            "  {}: steady-state ratio {:.2}x, fragmentation {:.1}%, \
             alloc-failure rate {:.1}% over {} cycles",
            row.lifetime,
            row.effective_ratio,
            100.0 * row.fragmentation,
            100.0 * row.failure_rate(),
            row.cycle
        );
    }
    println!("  Every run ends with a drain check: freeing the survivors returns the");
    println!("  device to 0 bytes used with fully coalesced free space (leak freedom).");
    write_csv(&cfg.results_dir, &cfg.tagged("churn"), &header, &rows)?;
    if let Some((prom, csv)) = emitter.finish()? {
        println!("  metrics -> {prom:?} and {csv:?}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(dir: &str) -> RunConfig {
        RunConfig {
            quick: true,
            results_dir: std::env::temp_dir().join(dir),
            ..Default::default()
        }
    }

    #[test]
    fn harness_writes_the_csv_artifact() {
        let cfg = quick_cfg("buddy-bench-churnfig");
        let _ = std::fs::remove_dir_all(&cfg.results_dir);
        churn(&cfg).unwrap();
        let csv = std::fs::read_to_string(cfg.results_dir.join("churn.csv")).unwrap();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("lifetime,cycle,ops"));
        // Three distributions × SAMPLES rows.
        assert_eq!(lines.count(), 3 * SAMPLES as usize);
    }

    #[test]
    fn steady_state_is_compressed_and_mostly_servable() {
        let cfg = quick_cfg("buddy-bench-churnfig-steady");
        for (label, lifetime) in distributions(live_target(true)) {
            let rows = run_distribution(label, lifetime, &cfg);
            let last = rows.last().expect("samples recorded");
            assert!(
                last.effective_ratio > 1.3,
                "{label}: ratio {} not compressed",
                last.effective_ratio
            );
            assert!(
                last.failure_rate() < 0.5,
                "{label}: failure rate {} — the device is thrashing",
                last.failure_rate()
            );
            assert!(
                last.live > 0 && last.live <= live_target(true),
                "{label}: live {} escaped steady state",
                last.live
            );
            // run_distribution's internal drain also asserted leak freedom.
        }
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let cfg = quick_cfg("buddy-bench-churnfig-det");
        let (label, lifetime) = ("uniform", distributions(live_target(true))[0].1);
        let a = run_distribution(label, lifetime, &cfg);
        let b = run_distribution(label, lifetime, &cfg);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.ops, rb.ops);
            assert_eq!(ra.live, rb.live);
            assert_eq!(ra.alloc_failures, rb.alloc_failures);
            assert_eq!(ra.effective_ratio, rb.effective_ratio);
            assert_eq!(ra.fragmentation, rb.fragmentation);
        }
    }
}
