//! Observability layer for the Buddy Compression workspace: lock-free
//! latency histograms, a feature-gated span tracer with Chrome-trace
//! export, and a metrics registry with deterministic time-series sampling.
//!
//! The crate deliberately has **no dependency** on any other workspace
//! crate so every layer — `buddy-core`'s device hot paths, `buddy-pool`'s
//! shard locks, `buddy-service`'s admission queues — can instrument itself
//! without dependency cycles. Three building blocks:
//!
//! * [`Histogram`] — an HdrHistogram-style log-bucketed latency histogram
//!   in a fixed ~2 KB footprint: 256 atomic buckets, 8 sub-buckets per
//!   octave, recording is wait-free (`fetch_add`), snapshots are mergeable
//!   across threads, and percentile estimates carry a one-sided ≤ 12.5 %
//!   relative error bound (see [`hist`] for the derivation). It replaces
//!   the unbounded collect-sort-index percentile paths the load generators
//!   started with.
//! * [`trace`] — a span tracer over a static taxonomy ([`SpanKind`]).
//!   Behind the `obs-trace` feature flag: when disabled (the default)
//!   every entry point is an inlined no-op and [`SpanGuard`] has no `Drop`
//!   impl, so instrumented hot paths compile to exactly the uninstrumented
//!   code; when enabled, spans land in per-thread single-writer ring
//!   buffers plus always-exact per-kind totals, and
//!   [`trace::export_chrome_trace`] renders everything still in the rings
//!   as Chrome trace-event JSON loadable in Perfetto.
//! * [`metrics`] — [`Counter`] / [`Gauge`] / [`Histogram`] behind a
//!   [`MetricsRegistry`] with a Prometheus-text renderer and a
//!   deterministic-interval [`metrics::sample_every`] background sampler
//!   that snapshots every registered metric into a tick-indexed
//!   [`TimeSeries`] CSV. `buddy-service`'s telemetry module re-exports the
//!   primitives from here — this crate is the only one in the workspace
//!   allowed to own raw atomics for metrics (enforced by the
//!   `raw-atomic-metric` xtask lint).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge, MetricsRegistry, SamplePoint, SamplerHandle, TimeSeries};
pub use trace::{KindTotal, SpanGuard, SpanKind, SpanTotals};
