//! Regenerates the paper's fig13d (see DESIGN.md §5). Pass --quick for a smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::dlfig::fig13d(&cfg)?;
    Ok(())
}
