//! Regenerates the paper's fig03 (see DESIGN.md §5). Pass --quick for a smoke run.

fn main() -> std::io::Result<()> {
    let cfg = buddy_bench::RunConfig::from_args();
    buddy_bench::capacity::fig03(&cfg)?;
    Ok(())
}
