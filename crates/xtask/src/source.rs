//! Source model for the lint driver: loads a Rust file and classifies every
//! line so the rules can scan *code* without tripping over comments, string
//! literals or unit-test modules.
//!
//! The scrubber is a small character state machine, not a parser: it strips
//! line and (nested) block comments, blanks out the contents of string /
//! char / byte literals, and distinguishes lifetimes from char literals with
//! a lookahead heuristic. That is deliberately lighter than driving rustc —
//! the invariants the rules enforce are all expressible as token presence,
//! and a text-level model keeps the driver dependency-free and fast.

use std::fmt;

/// One classified source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original text (for display and waiver/justification scanning).
    pub raw: String,
    /// Code only: comments removed, literal contents blanked with spaces.
    pub code: String,
    /// Comment text carried by this line (line + block comments joined).
    pub comment: String,
    /// True inside a `#[cfg(test)]` item (unit-test module or function).
    pub in_test: bool,
}

impl Line {
    /// True when the line carries no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.raw.trim().is_empty()
    }
}

/// A loaded, classified source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Classified lines, in order.
    pub lines: Vec<Line>,
}

/// One token lexed from the scrubbed code of a line. Tokens exist so rules
/// can match *structure* (`use` `std` `::` `sync` `::` `atomic`) instead of
/// guessing at substrings — `std::sync :: atomic`, odd spacing and split
/// use-trees all normalize to the same token sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text (`use`, `::`, `AtomicU64`, `"..."` for a blanked
    /// literal).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// Token class.
    pub kind: TokenKind,
    /// True when the token sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`use`, `seq`, `AtomicU64`).
    Ident,
    /// Operator / punctuation. Multi-char `::` is one token; everything
    /// else is a single character. Lifetimes lex as one `'a` punct.
    Punct,
    /// Number, string or char literal (string/char contents arrive blanked
    /// from the scrubber, so the text carries no payload).
    Literal,
}

/// A `// lint-allow-file(<rule>): <reason>` waiver covering every finding
/// of `rule` in the file. Must sit in the leading comment block, before the
/// first line that carries code — a waiver buried mid-file is easy to miss
/// in review, so the driver reports it as `misplaced-file-waiver` instead
/// of honouring it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileWaiver {
    /// Rule id being waived.
    pub rule: String,
    /// Human reason; empty reasons are themselves a finding.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub comment_line: usize,
    /// True when the waiver appears on or after the first code line.
    pub misplaced: bool,
}

/// A `// lint-allow(<rule>): <reason>` waiver, resolved to the code line it
/// covers (its own line if that line has code, else the next code line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule id being waived.
    pub rule: String,
    /// Human reason; empty reasons are themselves a finding.
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub comment_line: usize,
    /// 1-based code line the waiver applies to.
    pub target_line: usize,
}

impl fmt::Display for Waiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint-allow({}) at line {}", self.rule, self.comment_line)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

/// Splits `text` into per-line `(code, comment)` with literals blanked.
fn scrub(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw_line in text.split('\n') {
        let mut code = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0usize;
        // A line comment never continues past the newline.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        comment.push_str(&raw_line[byte_offset(raw_line, i)..]);
                        state = State::LineComment;
                        i = chars.len();
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Str { raw_hashes: None };
                        i += 1;
                    }
                    'r' | 'b' if starts_raw_string(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        code.push('"');
                        state = State::Str {
                            raw_hashes: Some(hashes),
                        };
                        i += consumed;
                    }
                    'b' if next == Some('\'') => {
                        code.push('\'');
                        state = State::Char;
                        i += 2;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            code.push('\'');
                            state = State::Char;
                        } else {
                            // A lifetime: keep the tick, stay in code.
                            code.push('\'');
                        }
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("consumed to end of line"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str { raw_hashes: None } => match c {
                    '\\' => {
                        code.push(' ');
                        i += 2;
                    }
                    '"' => {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                State::Str {
                    raw_hashes: Some(hashes),
                } => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        i += 2;
                    }
                    '\'' => {
                        code.push('\'');
                        state = State::Code;
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
            }
        }
        // Char literals never span lines; recover rather than poison the
        // rest of the file if the heuristic mis-fired on a lone tick.
        if state == State::Char {
            state = State::Code;
        }
        out.push((code, comment));
    }
    out
}

fn byte_offset(line: &str, char_index: usize) -> usize {
    line.char_indices()
        .nth(char_index)
        .map(|(b, _)| b)
        .unwrap_or(line.len())
}

fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // r"..." / r#"..."# / br"..." / b"..." is handled by the plain-quote arm.
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal (`'x'`, `'\n'`) from a lifetime (`'a`).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Lexes one scrubbed line into `out`. See [`SourceFile::tokens`].
fn lex_line(code: &str, line: usize, in_test: bool, out: &mut Vec<Token>) {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    let push = |out: &mut Vec<Token>, text: String, kind: TokenKind| {
        out.push(Token {
            text,
            line,
            kind,
            in_test,
        });
    };
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            push(out, chars[start..i].iter().collect(), TokenKind::Ident);
        } else if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // One fractional dot, so `1.5` is a single literal but the `..`
            // of `0..4` stays punctuation.
            if i < chars.len()
                && chars[i] == '.'
                && chars.get(i + 1).is_some_and(|ch| ch.is_ascii_digit())
            {
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            push(out, chars[start..i].iter().collect(), TokenKind::Literal);
        } else if c == '"' {
            // The scrubber blanked the payload; fold `"    "` into one
            // token. An unmatched quote (multi-line literal) lexes alone so
            // the rest of the line still tokenizes.
            match chars[i + 1..].iter().position(|&ch| ch == '"') {
                Some(off) => {
                    push(out, "\"\"".into(), TokenKind::Literal);
                    i += off + 2;
                }
                None => {
                    push(out, "\"".into(), TokenKind::Literal);
                    i += 1;
                }
            }
        } else if c == '\'' {
            // `' '` (a blanked char literal) vs `'a` (a lifetime).
            let close = chars[i + 1..].iter().position(|&ch| ch == '\'');
            match close {
                Some(off) if chars[i + 1..i + 1 + off].iter().all(|ch| *ch == ' ') => {
                    push(out, "''".into(), TokenKind::Literal);
                    i += off + 2;
                }
                _ => {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    push(out, chars[start..i].iter().collect(), TokenKind::Punct);
                }
            }
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            push(out, "::".into(), TokenKind::Punct);
            i += 2;
        } else {
            push(out, c.to_string(), TokenKind::Punct);
            i += 1;
        }
    }
}

/// Marks the lines belonging to `#[cfg(test)]` items by brace matching.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_close_depth: Option<i64> = None;
    for line in lines.iter_mut() {
        let starts_inside = test_close_depth.is_some();
        if line.code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let mut line_opened_test = false;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_cfg_test && test_close_depth.is_none() {
                        test_close_depth = Some(depth);
                        pending_cfg_test = false;
                        line_opened_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                _ => {}
            }
        }
        line.in_test = starts_inside || line_opened_test || pending_cfg_test;
    }
}

impl SourceFile {
    /// Builds the classified model from raw file contents.
    pub fn parse(text: &str) -> Self {
        let mut lines: Vec<Line> = scrub(text)
            .into_iter()
            .zip(text.split('\n'))
            .map(|((code, comment), raw)| Line {
                raw: raw.to_string(),
                code,
                comment,
                in_test: false,
            })
            .collect();
        mark_test_regions(&mut lines);
        SourceFile { lines }
    }

    /// Lexes the scrubbed code of every line into a flat token stream.
    ///
    /// The lexer is deliberately small: identifiers, `::` (the one
    /// multi-char punct the rules match on), single-char puncts, numeric
    /// literals, and blanked string/char literals as single [`TokenKind::Literal`]
    /// tokens. It runs on `Line::code`, so comments and literal payloads
    /// are already gone.
    pub fn tokens(&self) -> Vec<Token> {
        let mut out = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            lex_line(&line.code, idx + 1, line.in_test, &mut out);
        }
        out
    }

    /// All `lint-allow-file` waivers, with their placement validated: a
    /// file waiver is `misplaced` unless it sits strictly before the first
    /// line that carries code.
    pub fn file_waivers(&self) -> Vec<FileWaiver> {
        let first_code = self
            .lines
            .iter()
            .position(|l| !l.code.trim().is_empty())
            .unwrap_or(self.lines.len());
        let mut out = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            let trimmed = line
                .comment
                .trim_start_matches(['/', '!', '*', ' '].as_slice());
            if !trimmed.starts_with("lint-allow-file(") {
                continue;
            }
            let rest = &trimmed["lint-allow-file(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            out.push(FileWaiver {
                rule: rest[..close].trim().to_string(),
                reason: rest[close + 1..].trim_start_matches(':').trim().to_string(),
                comment_line: idx + 1,
                misplaced: idx >= first_code,
            });
        }
        out
    }

    /// All `lint-allow` waivers in the file, resolved to their target lines.
    pub fn waivers(&self) -> Vec<Waiver> {
        let mut out = Vec::new();
        for (idx, line) in self.lines.iter().enumerate() {
            // A waiver is a comment *starting* with `lint-allow(` (after the
            // comment markers) — prose that merely mentions the syntax, like
            // this sentence, is not one.
            let trimmed = line
                .comment
                .trim_start_matches(['/', '!', '*', ' '].as_slice());
            if !trimmed.starts_with("lint-allow(") {
                continue;
            }
            let rest = &trimmed["lint-allow(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
            let target_line = if line.is_comment_only() {
                // Applies to the next line that carries code.
                self.lines
                    .iter()
                    .enumerate()
                    .skip(idx + 1)
                    .find(|(_, l)| !l.code.trim().is_empty())
                    .map(|(i, _)| i + 1)
                    .unwrap_or(idx + 1)
            } else {
                idx + 1
            };
            out.push(Waiver {
                rule,
                reason,
                comment_line: idx + 1,
                target_line,
            });
        }
        out
    }

    /// True if any comment on `line` (1-based) or on the run of
    /// comment-only lines immediately above it contains `needle`
    /// (case-sensitive).
    pub fn has_adjacent_comment(&self, line: usize, needle: &str) -> bool {
        let idx = line - 1;
        if self
            .lines
            .get(idx)
            .is_some_and(|l| l.comment.contains(needle))
        {
            return true;
        }
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let l = &self.lines[j];
            if l.is_comment_only() {
                if l.comment.contains(needle) {
                    return true;
                }
            } else {
                break;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(text)
    }

    #[test]
    fn comments_and_strings_are_scrubbed() {
        let f = parse("let x = \"a.unwrap()\"; // call .unwrap() later\nlet c = 'x';");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].comment.contains(".unwrap()"));
        assert_eq!(f.lines[1].code, "let c = ' ';");
    }

    #[test]
    fn lifetimes_survive_scrubbing() {
        let f = parse("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let f = parse("let s = r#\"panic!(\"x\")\"#;\nlet t = \"\\\"quoted\\\"\";");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[1].code.ends_with(';'));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = parse("a; /* one /* two */ still */ b;\n/* open\npanic!()\n*/ c;");
        assert!(f.lines[0].code.contains("a;") && f.lines[0].code.contains("b;"));
        assert!(!f.lines[2].code.contains("panic"));
        assert!(f.lines[3].code.contains("c;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}";
        let f = parse(text);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn waivers_resolve_to_the_next_code_line() {
        let text = "// lint-allow(no-unwrap): bounded by construction\nx.unwrap();\ny.unwrap(); // lint-allow(no-unwrap): same-line form";
        let f = parse(text);
        let w = f.waivers();
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].target_line, w[0].rule.as_str()), (2, "no-unwrap"));
        assert_eq!(w[1].target_line, 3);
        assert_eq!(w[1].reason, "same-line form");
    }

    #[test]
    fn lexer_normalizes_spacing_and_classifies() {
        let f = parse("use std :: sync::atomic::{AtomicU64};\nlet x = 1.5 + seq.load(o);");
        let toks = f.tokens();
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            &texts[..9],
            &[
                "use",
                "std",
                "::",
                "sync",
                "::",
                "atomic",
                "::",
                "{",
                "AtomicU64"
            ]
        );
        assert!(toks
            .iter()
            .any(|t| t.text == "1.5" && t.kind == TokenKind::Literal));
        let seq_pos = toks.iter().position(|t| t.text == "seq").expect("seq");
        assert_eq!(toks[seq_pos].kind, TokenKind::Ident);
        assert_eq!(toks[seq_pos + 1].text, ".");
        assert_eq!(toks[seq_pos + 2].text, "load");
        assert!(toks.iter().all(|t| !t.in_test));
    }

    #[test]
    fn lexer_folds_literals_and_keeps_lifetimes() {
        let f = parse("fn f<'a>(s: &'a str) { g(\"payload\", 'x', 0..4); }");
        let toks = f.tokens();
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        // The string payload and char are blanked and folded; the range's
        // dots stay separate puncts around intact literals.
        assert!(texts.contains(&"\"\"") && texts.contains(&"''"));
        assert!(texts.contains(&"'a"));
        assert!(texts.contains(&"0") && texts.contains(&"4"));
        assert!(!texts.iter().any(|t| t.contains("payload")));
    }

    #[test]
    fn lexer_marks_test_tokens() {
        let f = parse("fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x(); } }");
        let toks = f.tokens();
        assert!(toks.iter().any(|t| t.text == "lib" && !t.in_test));
        assert!(toks.iter().any(|t| t.text == "x" && t.in_test));
    }

    #[test]
    fn file_waivers_parse_and_validate_placement() {
        let text = "//! Docs.\n// lint-allow-file(no-unwrap): leading block\nfn f() {}\n// lint-allow-file(lossy-cast): after code\n";
        let f = parse(text);
        let w = f.file_waivers();
        assert_eq!(w.len(), 2);
        assert_eq!(
            (w[0].rule.as_str(), w[0].comment_line, w[0].misplaced),
            ("no-unwrap", 2, false)
        );
        assert_eq!(w[0].reason, "leading block");
        assert!(w[1].misplaced, "waiver after first code line is misplaced");
        // A file waiver sharing a line with code is misplaced too.
        let same_line = parse("fn f() {} // lint-allow-file(no-unwrap): too late");
        assert!(same_line.file_waivers()[0].misplaced);
        // Line waivers and file waivers do not parse as each other.
        assert!(same_line.waivers().is_empty());
        assert!(parse("// lint-allow(no-unwrap): x\nf();")
            .file_waivers()
            .is_empty());
    }

    #[test]
    fn adjacent_comment_lookup_walks_comment_blocks() {
        let text = "// Relaxed: counter only needs atomicity.\n// (second line)\nc.fetch_add(1, Ordering::Relaxed);";
        let f = parse(text);
        assert!(f.has_adjacent_comment(3, "Relaxed"));
        assert!(!f.has_adjacent_comment(3, "SeqCst"));
    }
}
