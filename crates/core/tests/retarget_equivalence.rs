//! Observation equivalence of online re-targeting (DESIGN.md §8).
//!
//! `retarget` must be invisible to readers: for any contents, any codec and
//! any (old target → new target) pair,
//!
//! 1. `write → retarget → read` is byte-identical to `write → read` on a
//!    device that never migrated,
//! 2. every invalid access returns the identical error before and after,
//! 3. occupancy (device/buddy bytes, logical bytes, effective ratio),
//!    per-entry metadata states and read-side traffic counters all match a
//!    fresh device whose allocation was created at the new target in the
//!    first place.
//!
//! The property runs the **full cross product**: all 4 codecs × all 5 old
//! targets × all 5 new targets per generated content vector, so every
//! migration edge (including the zero-page raw-overflow representation
//! changes and the no-op diagonal) is exercised on every case.

use bpc::{CodecKind, ENTRY_BYTES};
use buddy_core::{AllocId, BuddyDevice, DeviceConfig, DeviceError, TargetRatio};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Entry = [u8; ENTRY_BYTES];

/// Small device: the suites build three devices per combo, and a compact
/// arena keeps the 100-combo cross product fast.
const CONFIG: DeviceConfig = DeviceConfig {
    device_capacity: 64 << 10,
    carve_out_factor: 3,
};

/// Entries spanning the compressibility spectrum (zero / constant /
/// small-noise / random), like the `no_movement` suite uses.
fn entry_of_kind(kind: u8, seed: u64) -> Entry {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut entry = [0u8; ENTRY_BYTES];
    match kind % 4 {
        0 => {}
        1 => {
            let w: u32 = rng.gen();
            for c in entry.chunks_exact_mut(4) {
                c.copy_from_slice(&w.to_le_bytes());
            }
        }
        2 => {
            let base: u32 = rng.gen_range(1 << 28..1 << 29);
            for c in entry.chunks_exact_mut(4) {
                let v = base + rng.gen_range(0u32..1 << 10);
                c.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => rng.fill(&mut entry[..]),
    }
    entry
}

/// Occupancy fingerprint compared across devices.
fn occupancy(dev: &BuddyDevice) -> (u64, u64, u64, String) {
    (
        dev.device_used(),
        dev.buddy_used(),
        dev.logical_bytes(),
        format!("{:.12}", dev.effective_ratio()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: full codec × target × target cross product
    /// per content vector.
    #[test]
    fn retarget_is_observation_equivalent(
        kinds in proptest::collection::vec((0u8..8, any::<u64>()), 1..24),
    ) {
        let contents: Vec<Entry> = kinds
            .iter()
            .map(|&(kind, seed)| entry_of_kind(kind, seed))
            .collect();
        let n = contents.len() as u64;

        for codec in CodecKind::ALL {
            for old_target in TargetRatio::DESCENDING {
                for new_target in TargetRatio::DESCENDING {
                    // Migrated: allocate at the old target, write, migrate.
                    let mut migrated = BuddyDevice::with_codec(CONFIG, codec);
                    let m = migrated.alloc("x", n, old_target).unwrap();
                    migrated.write_entries(m, 0, &contents).unwrap();
                    let report = migrated.retarget(m, new_target).unwrap();
                    prop_assert_eq!(report.old_target, old_target);
                    prop_assert_eq!(report.new_target, new_target);
                    prop_assert_eq!(report.entries, n);

                    // Direct: allocated at the new target from the start.
                    let mut direct = BuddyDevice::with_codec(CONFIG, codec);
                    let d = direct.alloc("x", n, new_target).unwrap();
                    direct.write_entries(d, 0, &contents).unwrap();

                    // Untouched: never migrated off the old target.
                    let mut untouched = BuddyDevice::with_codec(CONFIG, codec);
                    let u = untouched.alloc("x", n, old_target).unwrap();
                    untouched.write_entries(u, 0, &contents).unwrap();

                    let combo = format!("{codec}/{old_target}->{new_target}");

                    // (1) Bytes: identical to both references.
                    let mut from_migrated = vec![[9u8; ENTRY_BYTES]; contents.len()];
                    migrated.read_entries(m, 0, &mut from_migrated).unwrap();
                    prop_assert_eq!(&from_migrated, &contents, "{}: bytes", &combo);
                    let mut from_untouched = vec![[0u8; ENTRY_BYTES]; contents.len()];
                    untouched.read_entries(u, 0, &mut from_untouched).unwrap();
                    prop_assert_eq!(&from_migrated, &from_untouched, "{}: vs never-retargeted", &combo);

                    // (2) Errors: invalid accesses fail identically.
                    prop_assert_eq!(
                        migrated.read_entry(m, n),
                        direct.read_entry(d, n),
                        "{}: out-of-range error", &combo
                    );
                    prop_assert_eq!(
                        migrated.write_entries(m, n, &[contents[0]]),
                        direct.write_entries(d, n, &[contents[0]]),
                        "{}: out-of-range batch error", &combo
                    );
                    let foreign = foreign_handle();
                    prop_assert_eq!(
                        migrated.read_entry(foreign, 0),
                        direct.read_entry(foreign, 0),
                        "{}: bad-handle error", &combo
                    );
                    prop_assert_eq!(
                        migrated.retarget(foreign, new_target),
                        Err(DeviceError::BadAllocation),
                        "{}: bad-handle retarget", &combo
                    );

                    // (3) Metadata states and occupancy match the
                    // directly-allocated device exactly.
                    for i in 0..n {
                        prop_assert_eq!(
                            migrated.entry_state(m, i).unwrap(),
                            direct.entry_state(d, i).unwrap(),
                            "{}: state of entry {}", &combo, i
                        );
                    }
                    prop_assert_eq!(occupancy(&migrated), occupancy(&direct), "{}: occupancy", &combo);

                    // (4) Read-side traffic: after a stats reset, a full
                    // read pass produces identical counters.
                    migrated.reset_stats();
                    direct.reset_stats();
                    let mut sink = vec![[0u8; ENTRY_BYTES]; contents.len()];
                    migrated.read_entries(m, 0, &mut sink).unwrap();
                    let migrated_reads = migrated.stats();
                    direct.read_entries(d, 0, &mut sink).unwrap();
                    prop_assert_eq!(migrated_reads, direct.stats(), "{}: read stats", &combo);

                    // (5) State windows agree, so the adaptive policy sees
                    // the same allocation either way.
                    prop_assert_eq!(
                        migrated.state_window(m).unwrap(),
                        direct.state_window(d).unwrap(),
                        "{}: state window", &combo
                    );
                }
            }
        }
    }

    /// Chained migrations through a random walk of targets land in exactly
    /// the state of a single direct allocation at the final target.
    #[test]
    fn chained_retargets_collapse_to_the_last_target(
        kinds in proptest::collection::vec((0u8..8, any::<u64>()), 1..16),
        walk in proptest::collection::vec(0usize..5, 1..6),
        codec_idx in 0usize..4,
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let contents: Vec<Entry> = kinds
            .iter()
            .map(|&(kind, seed)| entry_of_kind(kind, seed))
            .collect();
        let n = contents.len() as u64;

        let mut migrated = BuddyDevice::with_codec(CONFIG, codec);
        let m = migrated.alloc("walk", n, TargetRatio::R1).unwrap();
        migrated.write_entries(m, 0, &contents).unwrap();
        let mut last = TargetRatio::R1;
        for &step in &walk {
            last = TargetRatio::DESCENDING[step];
            migrated.retarget(m, last).unwrap();
        }

        let mut direct = BuddyDevice::with_codec(CONFIG, codec);
        let d = direct.alloc("walk", n, last).unwrap();
        direct.write_entries(d, 0, &contents).unwrap();

        let mut out = vec![[0u8; ENTRY_BYTES]; contents.len()];
        migrated.read_entries(m, 0, &mut out).unwrap();
        prop_assert_eq!(&out, &contents);
        prop_assert_eq!(occupancy(&migrated), occupancy(&direct));
        for i in 0..n {
            prop_assert_eq!(
                migrated.entry_state(m, i).unwrap(),
                direct.entry_state(d, i).unwrap()
            );
        }
    }

    /// Writes landing *after* a migration behave exactly as on a direct
    /// device: same states, same counters, same read-back — migration
    /// leaves no residue that could skew later traffic.
    #[test]
    fn post_retarget_writes_are_indistinguishable(
        before in proptest::collection::vec((0u8..8, any::<u64>()), 1..12),
        after in proptest::collection::vec((0u64..12, 0u8..8, any::<u64>()), 1..12),
        codec_idx in 0usize..4,
        old_idx in 0usize..5,
        new_idx in 0usize..5,
    ) {
        let codec = CodecKind::ALL[codec_idx];
        let old_target = TargetRatio::DESCENDING[old_idx];
        let new_target = TargetRatio::DESCENDING[new_idx];
        let n = 12u64;

        let initial: Vec<Entry> = (0..n as usize)
            .map(|i| {
                let (kind, seed) = before[i % before.len()];
                entry_of_kind(kind, seed)
            })
            .collect();

        let mut migrated = BuddyDevice::with_codec(CONFIG, codec);
        let m = migrated.alloc("w", n, old_target).unwrap();
        migrated.write_entries(m, 0, &initial).unwrap();
        migrated.retarget(m, new_target).unwrap();

        let mut direct = BuddyDevice::with_codec(CONFIG, codec);
        let d = direct.alloc("w", n, new_target).unwrap();
        direct.write_entries(d, 0, &initial).unwrap();

        migrated.reset_stats();
        direct.reset_stats();
        for &(index, kind, seed) in &after {
            let entry = entry_of_kind(kind, seed);
            prop_assert_eq!(
                migrated.write_entry(m, index, &entry),
                direct.write_entry(d, index, &entry)
            );
        }
        prop_assert_eq!(migrated.stats(), direct.stats());
        for i in 0..n {
            prop_assert_eq!(
                migrated.read_entry(m, i).unwrap(),
                direct.read_entry(d, i).unwrap(),
                "entry {} after post-migration writes", i
            );
        }
    }
}

/// A handle no single-allocation device in this suite recognizes:
/// `AllocId` has no public constructor, so mint index 7 on a throwaway
/// device with eight allocations.
fn foreign_handle() -> AllocId {
    let mut scratch = BuddyDevice::new(CONFIG);
    let mut last = None;
    for i in 0..8 {
        last = Some(scratch.alloc(&format!("f{i}"), 1, TargetRatio::R1).unwrap());
    }
    last.unwrap()
}
