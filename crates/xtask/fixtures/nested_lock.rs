//! Known-bad corpus for the `nested-lock` rule: acquiring a second shard
//! lock while a `let`-bound guard is still in scope must be flagged;
//! sequential and loop-scoped acquisitions must not.
#![forbid(unsafe_code)]

impl Pool {
    fn deadlock_prone(&self, a: usize, b: usize) -> u64 {
        let first = self.shard(a);
        let second = self.shard(b); // expect(nested-lock)
        first.used() + second.used()
    }

    fn temporary_while_held(&self, a: usize, b: usize) -> u64 {
        let guard = self.guard_of(a);
        guard.used() + self.shard(b).used() // expect(nested-lock)
    }

    fn raw_mutex_while_held(&self, a: usize) -> u64 {
        let guard = self.guard_of(a);
        guard.used() + self.total.lock().len() as u64 // expect(nested-lock)
    }

    fn sequential_is_fine(&self, a: usize, b: usize) -> u64 {
        let x = {
            let g = self.shard(a);
            g.used()
        };
        x + self.shard(b).used()
    }

    fn loop_scoped_is_fine(&self) -> u64 {
        let mut total = 0;
        for i in 0..self.shard_count() {
            let g = self.shard(i);
            total += g.used();
        }
        total
    }

    fn back_to_back_temporaries_are_fine(&self, a: usize, b: usize) -> u64 {
        self.shard(a).used() + self.shard(b).used()
    }

    fn waived_ordered_sweep(&self) -> u64 {
        let first = self.shard(0);
        // lint-allow(nested-lock): guards are taken in ascending shard order, mirroring drain()
        let second = self.shard(1);
        first.used() + second.used()
    }
}
