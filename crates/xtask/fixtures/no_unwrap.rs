//! Known-bad corpus for the `no-unwrap` rule. Every `// expect(no-unwrap)`
//! line must be flagged; the test module and the reasoned waiver must not
//! be. This file is never compiled — it is scanned by `xtask lint
//! --self-check` as the rule's mutation test.
#![forbid(unsafe_code)]

fn bad(opt: Option<u32>) -> u32 {
    let a = opt.unwrap(); // expect(no-unwrap)
    let b = opt.expect("present"); // expect(no-unwrap)
    if a == 0 {
        panic!("zero is not a value we accept"); // expect(no-unwrap)
    }
    a + b
}

fn prose_and_strings_are_not_code(s: &str) -> usize {
    // Calling .unwrap() here would be bad, but this is a comment.
    let t = "never .unwrap() in a string literal either";
    s.len() + t.len()
}

fn waived(opt: Option<u32>) -> u32 {
    // lint-allow(no-unwrap): fixture demonstrates that a reasoned waiver suppresses
    opt.unwrap()
}

// A reasonless waiver must NOT suppress, and is a finding itself:
// expect-file(waiver-without-reason)
// lint-allow(no-unwrap)
fn reasonless(opt: Option<u32>) -> u32 { opt.unwrap() } // expect(no-unwrap)

// A waiver naming a rule the registry does not know is a finding too:
// expect-file(unknown-waiver)
// lint-allow(no-such-rule): typo'd rule ids must never silently waive anything
fn untouched() {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        Some(1u32).unwrap();
        None::<u32>.expect("tests may assert freely");
        panic!("even this");
    }
}
