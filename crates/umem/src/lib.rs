//! Unified Memory oversubscription model (the paper's Figure 12).
//!
//! The paper measures UM oversubscription on real hardware: a Power9 host
//! connected to a V100 over three NVLink2 bricks (75 GB/s full-duplex),
//! with an interposer hogging GPU memory to force 0–40% oversubscription.
//! That hardware is unavailable, so this crate models the mechanism the
//! measurements expose:
//!
//! * **UM migration** — non-resident pages fault; the driver's fault
//!   handling is "remote and non-distributed" (§3.3), so faults serialize
//!   through a single handler that pays a fault-handling latency plus the
//!   page migration transfer, evicting LRU pages once the device is full
//!   (which is what produces thrashing).
//! * **Pinned host memory** — the compiler flag the paper compares against
//!   (dotted lines): every access to the oversubscribed region crosses the
//!   interconnect, turning the workload bandwidth-bound on the link but
//!   avoiding faults entirely.
//!
//! The headline observation to reproduce: *"UM migration heuristics often
//! perform worse than running applications completely pinned in host
//! memory"*, with slowdowns of up to 16–64× at modest oversubscription,
//! while Buddy Compression at 50 GB/s suffers at most 1.67× (§4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// One access in a page-granular trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// Page index within the workload footprint.
    pub page: u64,
    /// Bytes touched by the access (for bandwidth accounting).
    pub bytes: u32,
    /// Whether the access dirties the page.
    pub write: bool,
}

/// Management policy for the oversubscribed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Fault-driven page migration with LRU eviction (CUDA Unified Memory).
    UnifiedMemory,
    /// All allocations pinned in host memory, accessed over the link.
    PinnedHost,
    /// Everything resident in device memory from the start — the original
    /// application without oversubscription (the figure's denominator).
    DeviceResident,
}

/// System and cost parameters.
///
/// Defaults model the paper's measurement platform: V100 (900 GB/s HBM2)
/// attached to a Power9 by three NVLink2 bricks (75 GB/s full-duplex), 64 KB
/// migration granularity, and a 25 µs GPU fault-handling round trip (within
/// the 20–50 µs range reported for Pascal/Volta UM).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UmConfig {
    /// Migration/page granularity in bytes.
    pub page_bytes: u64,
    /// Device memory available to the workload, in bytes (reduced by the
    /// oversubscription interposer).
    pub device_bytes: u64,
    /// Device DRAM bandwidth in GB/s.
    pub device_bandwidth_gbps: f64,
    /// Interconnect bandwidth in GB/s (per direction).
    pub link_bandwidth_gbps: f64,
    /// Driver fault-handling latency per fault batch, in microseconds.
    pub fault_latency_us: f64,
    /// GPU-side minimum per-access issue cost in nanoseconds (keeps the
    /// native runtime from degenerating to zero for tiny traces).
    pub access_issue_ns: f64,
}

impl Default for UmConfig {
    fn default() -> Self {
        Self {
            page_bytes: 64 << 10,
            device_bytes: 0, // caller sets from footprint × (1 − oversub)
            device_bandwidth_gbps: 900.0,
            link_bandwidth_gbps: 75.0,
            fault_latency_us: 25.0,
            // Memory-bound GPU kernels sustain ~10 accesses/ns chip-wide;
            // the issue floor only guards degenerate tiny traces.
            access_issue_ns: 0.1,
        }
    }
}

/// Simulation result for one policy/oversubscription point.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UmStats {
    /// Estimated runtime in microseconds.
    pub runtime_us: f64,
    /// Page faults taken (UM policy only).
    pub faults: u64,
    /// Pages migrated device→host (evictions).
    pub evictions: u64,
    /// Bytes moved over the interconnect.
    pub link_bytes: u64,
    /// Bytes served from device DRAM.
    pub device_bytes_touched: u64,
    /// Accesses simulated.
    pub accesses: u64,
}

impl UmStats {
    /// Slowdown of this run relative to `native` (no oversubscription).
    pub fn slowdown_vs(&self, native: &UmStats) -> f64 {
        if native.runtime_us == 0.0 {
            1.0
        } else {
            self.runtime_us / native.runtime_us
        }
    }

    /// Faults per thousand accesses — the thrashing indicator.
    pub fn faults_per_kilo_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1000.0 * self.faults as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for UmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} us, {} faults / {} accesses, {} MB over link",
            self.runtime_us,
            self.faults,
            self.accesses,
            self.link_bytes >> 20
        )
    }
}

/// LRU page set with O(1) amortized touch/evict (clock-style second chance
/// would also do; exactness is irrelevant at this scale).
#[derive(Debug, Default)]
struct PageSet {
    // page -> (last_use, dirty)
    resident: HashMap<u64, (u64, bool)>,
    tick: u64,
}

impl PageSet {
    fn touch(&mut self, page: u64, write: bool) -> bool {
        self.tick += 1;
        match self.resident.get_mut(&page) {
            Some((t, dirty)) => {
                *t = self.tick;
                *dirty |= write;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, page: u64, write: bool) {
        self.tick += 1;
        self.resident.insert(page, (self.tick, write));
    }

    fn evict_lru(&mut self) -> Option<(u64, bool)> {
        let (&page, &(_, dirty)) = self.resident.iter().min_by_key(|(_, (t, _))| *t)?;
        self.resident.remove(&page);
        Some((page, dirty))
    }

    fn len(&self) -> usize {
        self.resident.len()
    }
}

/// Runs the model over a page-access trace under the given policy.
///
/// Pass `device_bytes >= footprint` for the native (no oversubscription)
/// baseline; the returned stats of that run are the denominator for
/// [`UmStats::slowdown_vs`].
pub fn simulate(
    trace: impl IntoIterator<Item = PageAccess>,
    policy: Policy,
    config: &UmConfig,
) -> UmStats {
    let mut stats = UmStats::default();
    let device_pages = (config.device_bytes / config.page_bytes.max(1)).max(1);
    let mut resident = PageSet::default();

    let link_us_per_byte = 1.0 / (config.link_bandwidth_gbps * 1e3); // GB/s → B/us
    let device_us_per_byte = 1.0 / (config.device_bandwidth_gbps * 1e3);
    let page_migrate_us = config.page_bytes as f64 * link_us_per_byte;

    // Runtime components: device-bandwidth time, link-bandwidth time, and
    // the serialized fault-handler time. The observed runtime is the max of
    // the parallel components plus the serial fault time — faults stall the
    // faulting warps *and* occupy the single driver handler (§3.3).
    let mut device_time_us = 0.0f64;
    let mut link_time_us = 0.0f64;
    let mut fault_time_us = 0.0f64;
    let mut issue_time_us = 0.0f64;

    for access in trace {
        stats.accesses += 1;
        issue_time_us += config.access_issue_ns * 1e-3;
        match policy {
            Policy::PinnedHost => {
                // Every byte crosses the link; no faults, no migrations.
                stats.link_bytes += access.bytes as u64;
                link_time_us += access.bytes as f64 * link_us_per_byte;
            }
            Policy::DeviceResident => {
                stats.device_bytes_touched += access.bytes as u64;
                device_time_us += access.bytes as f64 * device_us_per_byte;
            }
            Policy::UnifiedMemory => {
                if resident.touch(access.page, access.write) {
                    stats.device_bytes_touched += access.bytes as u64;
                    device_time_us += access.bytes as f64 * device_us_per_byte;
                } else {
                    // Page fault: driver round trip + migration in; evict
                    // (and write back if dirty) once the device is full.
                    stats.faults += 1;
                    fault_time_us += config.fault_latency_us + page_migrate_us;
                    stats.link_bytes += config.page_bytes;
                    if resident.len() as u64 >= device_pages {
                        if let Some((_, dirty)) = resident.evict_lru() {
                            stats.evictions += 1;
                            if dirty {
                                fault_time_us += page_migrate_us;
                                stats.link_bytes += config.page_bytes;
                            }
                        }
                    }
                    resident.insert(access.page, access.write);
                    stats.device_bytes_touched += access.bytes as u64;
                    device_time_us += access.bytes as f64 * device_us_per_byte;
                }
            }
        }
    }

    stats.runtime_us = device_time_us.max(link_time_us).max(issue_time_us) + fault_time_us;
    stats
}

/// Convenience: runtime of the native run (everything device-resident,
/// copied up-front as the original non-UM application would).
pub fn native_baseline(trace: impl IntoIterator<Item = PageAccess>, config: &UmConfig) -> UmStats {
    simulate(trace, Policy::DeviceResident, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cyclic sweep over `pages` pages, `len` accesses.
    fn sweep(pages: u64, len: u64) -> impl Iterator<Item = PageAccess> {
        (0..len).map(move |i| PageAccess {
            page: i % pages,
            bytes: 4096,
            write: i % 3 == 0,
        })
    }

    fn config_with_device(bytes: u64) -> UmConfig {
        UmConfig {
            device_bytes: bytes,
            ..UmConfig::default()
        }
    }

    #[test]
    fn no_oversubscription_no_faults_after_warmup() {
        let cfg = config_with_device(100 * (64 << 10));
        let stats = simulate(sweep(50, 5000), Policy::UnifiedMemory, &cfg);
        assert_eq!(stats.faults, 50, "only cold faults");
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cyclic_working_set_thrashes_lru() {
        // 100 pages cycled through 90 device pages: LRU evicts exactly the
        // page about to be used — the classic UM thrashing pathology.
        let cfg = config_with_device(90 * (64 << 10));
        let stats = simulate(sweep(100, 10_000), Policy::UnifiedMemory, &cfg);
        assert!(
            stats.faults > 9_000,
            "cyclic access through an over-full LRU must thrash: {} faults",
            stats.faults
        );
    }

    #[test]
    fn um_slowdown_grows_with_oversubscription() {
        let footprint_pages = 200u64;
        let native = native_baseline(sweep(footprint_pages, 20_000), &UmConfig::default());
        let mut last = 1.0;
        for oversub in [0.0, 0.1, 0.2, 0.3, 0.4] {
            let device = ((footprint_pages as f64) * (1.0 - oversub)) as u64 * (64 << 10);
            let cfg = config_with_device(device);
            let stats = simulate(sweep(footprint_pages, 20_000), Policy::UnifiedMemory, &cfg);
            let slowdown = stats.slowdown_vs(&native);
            assert!(
                slowdown >= last * 0.99,
                "slowdown should be monotone in oversubscription: {slowdown} after {last}"
            );
            last = slowdown;
        }
        assert!(
            last > 4.0,
            "40% oversubscription should hurt badly: {last:.1}x"
        );
    }

    #[test]
    fn pinned_is_flat_in_oversubscription() {
        let native = native_baseline(sweep(200, 20_000), &UmConfig::default());
        let mut slowdowns = Vec::new();
        for oversub in [0.1, 0.4] {
            let device = (200.0 * (1.0 - oversub)) as u64 * (64 << 10);
            let cfg = config_with_device(device);
            let stats = simulate(sweep(200, 20_000), Policy::PinnedHost, &cfg);
            slowdowns.push(stats.slowdown_vs(&native));
        }
        assert!(
            (slowdowns[0] - slowdowns[1]).abs() < 1e-9,
            "pinned runtime does not depend on device capacity: {slowdowns:?}"
        );
        assert!(
            slowdowns[0] > 1.0,
            "link-bound must be slower than device-bound"
        );
    }

    #[test]
    fn um_worse_than_pinned_under_thrashing() {
        // The paper's headline: thrashing UM loses to simply pinning.
        let device = 90 * (64 << 10);
        let cfg = config_with_device(device);
        let um = simulate(sweep(100, 20_000), Policy::UnifiedMemory, &cfg);
        let pinned = simulate(sweep(100, 20_000), Policy::PinnedHost, &cfg);
        assert!(
            um.runtime_us > pinned.runtime_us,
            "thrashing UM ({:.0} us) should lose to pinned ({:.0} us)",
            um.runtime_us,
            pinned.runtime_us
        );
    }

    #[test]
    fn dirty_evictions_double_migration_traffic() {
        let cfg = config_with_device(10 * (64 << 10));
        let mut all_writes = (0..10_000u64).map(|i| PageAccess {
            page: i % 50,
            bytes: 4096,
            write: true,
        });
        let writes = simulate(
            &mut all_writes as &mut dyn Iterator<Item = _>,
            Policy::UnifiedMemory,
            &cfg,
        );
        let mut all_reads = (0..10_000u64).map(|i| PageAccess {
            page: i % 50,
            bytes: 4096,
            write: false,
        });
        let reads = simulate(
            &mut all_reads as &mut dyn Iterator<Item = _>,
            Policy::UnifiedMemory,
            &cfg,
        );
        assert!(
            writes.link_bytes > reads.link_bytes,
            "dirty pages must be written back"
        );
        assert!(writes.runtime_us > reads.runtime_us);
    }

    #[test]
    fn stats_helpers() {
        let native = UmStats {
            runtime_us: 100.0,
            ..Default::default()
        };
        let slow = UmStats {
            runtime_us: 450.0,
            faults: 30,
            accesses: 3000,
            ..Default::default()
        };
        assert!((slow.slowdown_vs(&native) - 4.5).abs() < 1e-12);
        assert!((slow.faults_per_kilo_access() - 10.0).abs() < 1e-12);
        assert!(slow.to_string().contains("faults"));
    }
}
