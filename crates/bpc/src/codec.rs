//! The codec-agnostic compression API: an object-safe [`Codec`] trait with a
//! zero-allocation encode path, a reusable [`CompressedBuf`] scratch buffer,
//! and a [`CodecKind`] registry for selecting algorithms by name.
//!
//! The paper picks BPC only after "comparing several algorithms" (§2.4);
//! this layer lets the rest of the system — the functional `BuddyDevice`,
//! the snapshot profiler and the figure harnesses — run *any* of the
//! implemented algorithms through the same pipeline. Related designs treat
//! the compressor as a swappable pipeline stage the same way (e.g. the
//! Compressing DMA Engine of Rhu et al., MICRO 2017).
//!
//! # The two compression paths
//!
//! * **Allocating** — [`BlockCompressor::compress`] returns an owned
//!   [`Compressed`] block. Convenient for one-off use; costs one `Vec`
//!   allocation per entry.
//! * **Zero-allocation** — [`Codec::compress_into`] encodes into a
//!   caller-owned [`CompressedBuf`]. After the first call the buffer's
//!   capacity is reused, so hot loops (the device write path, the snapshot
//!   samplers, the figure harnesses) compress millions of entries without
//!   touching the heap.
//!
//! [`BlockCompressor`] is kept as a compatibility shim: every [`Codec`]
//! implements it automatically (see the blanket impl), so existing
//! `compress`/`decompress` call sites keep working unchanged.
//!
//! # Example
//!
//! ```
//! use bpc::{codec_by_name, Codec, CodecKind, CompressedBuf, ENTRY_BYTES};
//!
//! let codec = codec_by_name("bdi").expect("bdi is registered");
//! let entry = [0u8; ENTRY_BYTES];
//! let mut buf = CompressedBuf::new();
//! codec.compress_into(&entry, &mut buf);
//! assert_eq!(buf.algorithm(), "bdi");
//!
//! let mut restored = [0xFFu8; ENTRY_BYTES];
//! codec.decompress_into(buf.data(), buf.bits(), &mut restored).unwrap();
//! assert_eq!(restored, entry);
//!
//! // CodecKind is the Copy-able handle the device model stores.
//! assert_eq!(CodecKind::from_name("bdi"), Some(CodecKind::Bdi));
//! ```

use crate::bits::BitWriter;
use crate::{
    BaseDeltaImmediate, BitPlane, BlockCompressor, Compressed, DecodeError, Entry, FrequentPattern,
    SizeClass, ZeroRle, ENTRY_BYTES,
};
use std::fmt;

/// A reusable buffer holding one compressed entry.
///
/// This is the zero-allocation counterpart of [`Compressed`]: the byte
/// buffer's capacity survives across [`Codec::compress_into`] calls, so a
/// loop that compresses many entries allocates at most once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedBuf {
    algorithm: &'static str,
    bits: usize,
    data: Vec<u8>,
}

impl CompressedBuf {
    /// Creates an empty buffer. The first compression into it allocates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with room for `bytes` bytes of bitstream, enough to
    /// avoid any allocation if sized at [`ENTRY_BYTES`] + slack.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            algorithm: "",
            bits: 0,
            data: Vec::with_capacity(bytes),
        }
    }

    /// Name of the algorithm that last encoded into this buffer (empty
    /// before the first [`Codec::compress_into`]).
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// Exact compressed size in bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Compressed size rounded up to whole bytes.
    pub fn bytes(&self) -> usize {
        self.bits.div_ceil(8)
    }

    /// The encoded bitstream (MSB-first within each byte).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The capacity size class of the held bitstream.
    pub fn size_class(&self) -> SizeClass {
        SizeClass::for_bits(self.bits)
    }

    /// Number of 32 B sectors needed to store this block, between 1 and 4.
    pub fn sectors(&self) -> u8 {
        self.size_class().sectors().max(1)
    }

    /// Starts a fresh encode, handing out a [`BitWriter`] that reuses this
    /// buffer's backing storage. Pair with [`finish`](Self::finish).
    ///
    /// Codec implementations use this; callers normally only pass the buffer
    /// to [`Codec::compress_into`].
    pub fn begin(&mut self) -> BitWriter {
        self.algorithm = "";
        self.bits = 0;
        BitWriter::reusing(std::mem::take(&mut self.data))
    }

    /// Completes an encode started with [`begin`](Self::begin), recording
    /// the producing algorithm and taking the bitstream back.
    ///
    /// # Panics
    ///
    /// Panics if the writer's bitstream is shorter than its declared bit
    /// length (impossible for streams produced via [`BitWriter`]).
    pub fn finish(&mut self, algorithm: &'static str, writer: BitWriter) {
        let (data, bits) = writer.into_parts();
        assert!(
            data.len() * 8 >= bits,
            "bitstream shorter than declared: {} bytes for {bits} bits",
            data.len()
        );
        self.algorithm = algorithm;
        self.bits = bits;
        self.data = data;
    }

    /// Copies the held bitstream into an owned [`Compressed`] block.
    pub fn to_compressed(&self) -> Compressed {
        Compressed::new(self.algorithm, self.bits, self.data.clone())
    }

    /// Converts the buffer into an owned [`Compressed`] block without
    /// copying the bitstream.
    pub fn into_compressed(self) -> Compressed {
        Compressed::new(self.algorithm, self.bits, self.data)
    }
}

/// An object-safe, allocation-free lossless compressor for 128-byte
/// memory-entries.
///
/// This is the primary compression interface; [`BlockCompressor`] is a
/// compatibility shim implemented for every `Codec` via a blanket impl.
/// Implementations must satisfy the round-trip law: for every entry `e` and
/// buffer `b`, `compress_into(&e, &mut b)` followed by
/// `decompress_into(b.data(), b.bits(), &mut out)` must succeed with
/// `out == e`. This is property-tested for every codec in this crate.
///
/// Decoders must also be *total* on garbage: any `(data, bits)` input either
/// decodes or returns a structured [`DecodeError`] — never a panic.
///
/// `Sync` is a supertrait: the registry hands out `&'static dyn Codec`
/// references that concurrent clients (e.g. the `buddy-pool` shards) share
/// across threads, so every codec must be safe to call from many threads at
/// once. All implementations are stateless unit structs, so this costs
/// nothing.
pub trait Codec: Sync {
    /// Short stable name of the algorithm (used in reports, metadata and
    /// the [`codec_by_name`] registry).
    fn name(&self) -> &'static str;

    /// Compresses one entry into `out`, reusing `out`'s backing storage.
    ///
    /// On return `out` holds the full bitstream, its exact bit length and
    /// this codec's name. Steady-state this path performs no heap
    /// allocation (the buffer grows once to its high-water mark).
    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf);

    /// Decodes a bitstream previously produced by this codec into `out`.
    ///
    /// `bits` bounds how many bits of `data` are valid; decoders may read
    /// fewer (trailing padding, e.g. from sector-aligned storage, is
    /// ignored). Unlike [`BlockCompressor::decompress`], no algorithm tag
    /// is checked: the caller owns the association between stored streams
    /// and the codec that wrote them, as `BuddyDevice` does.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bitstream is malformed or truncated.
    fn decompress_into(&self, data: &[u8], bits: usize, out: &mut Entry)
        -> Result<(), DecodeError>;

    /// The capacity size class of `entry` under this codec, using `scratch`
    /// so repeated classification allocates nothing.
    ///
    /// All-zero entries map to [`SizeClass::B0`]: the paper's capacity
    /// study (Figure 3) counts tracked-zero entries as occupying no data
    /// storage.
    fn size_class_into(&self, entry: &Entry, scratch: &mut CompressedBuf) -> SizeClass {
        if entry.iter().all(|&b| b == 0) {
            SizeClass::B0
        } else {
            self.compress_into(entry, scratch);
            scratch.size_class()
        }
    }
}

/// Every [`Codec`] is a [`BlockCompressor`]: the legacy allocating API is a
/// thin shim over the zero-allocation one, so code written against
/// `BlockCompressor` (and trait objects, via `?Sized`) keeps working.
impl<C: Codec + ?Sized> BlockCompressor for C {
    fn name(&self) -> &'static str {
        Codec::name(self)
    }

    fn compress(&self, entry: &Entry) -> Compressed {
        let mut buf = CompressedBuf::new();
        self.compress_into(entry, &mut buf);
        buf.into_compressed()
    }

    fn decompress(&self, compressed: &Compressed) -> Result<Entry, DecodeError> {
        if compressed.algorithm() != Codec::name(self) {
            return Err(DecodeError::WrongAlgorithm {
                found: compressed.algorithm(),
                expected: Codec::name(self),
            });
        }
        let mut entry = [0u8; ENTRY_BYTES];
        self.decompress_into(compressed.data(), compressed.bits(), &mut entry)?;
        Ok(entry)
    }
}

/// The four implemented compression algorithms, as a `Copy` handle.
///
/// `CodecKind` itself implements [`Codec`] by dispatching to the selected
/// algorithm, so it can be stored inside `Clone`-able structures (the
/// functional `BuddyDevice` keeps one) and passed across threads freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// Bit-Plane Compression ([`BitPlane`]) — the paper's choice.
    Bpc,
    /// Base-Delta-Immediate ([`BaseDeltaImmediate`]).
    Bdi,
    /// Frequent Pattern Compression ([`FrequentPattern`]).
    Fpc,
    /// The zero-detector lower bound ([`ZeroRle`]).
    Zero,
}

impl CodecKind {
    /// All registered codecs, BPC first (the default everywhere).
    pub const ALL: [CodecKind; 4] = [
        CodecKind::Bpc,
        CodecKind::Bdi,
        CodecKind::Fpc,
        CodecKind::Zero,
    ];

    /// The static codec instance this handle selects.
    pub fn as_codec(self) -> &'static dyn Codec {
        match self {
            CodecKind::Bpc => &BitPlane,
            CodecKind::Bdi => &BaseDeltaImmediate,
            CodecKind::Fpc => &FrequentPattern,
            CodecKind::Zero => &ZeroRle,
        }
    }

    /// Looks a codec up by its stable name (`"bpc"`, `"bdi"`, `"fpc"`,
    /// `"zero"`; `"zero-rle"` is accepted as an alias). Matching is
    /// ASCII-case-insensitive, so CLI values like `--codec BPC` resolve.
    pub fn from_name(name: &str) -> Option<Self> {
        let eq = |canonical: &str| name.eq_ignore_ascii_case(canonical);
        if eq("bpc") {
            Some(CodecKind::Bpc)
        } else if eq("bdi") {
            Some(CodecKind::Bdi)
        } else if eq("fpc") {
            Some(CodecKind::Fpc)
        } else if eq("zero") || eq("zero-rle") {
            Some(CodecKind::Zero)
        } else {
            None
        }
    }
}

// The registry's static codec instances are shared by reference across
// threads (each `buddy-pool` shard compresses concurrently through the same
// `&'static dyn Codec`), so both the trait object and the `Copy` handle must
// be `Send + Sync`. Checked at compile time.
const _: () = {
    const fn assert_sync<T: Sync + ?Sized>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_sync::<dyn Codec>();
    assert_send_sync::<CodecKind>();
};

impl Codec for CodecKind {
    fn name(&self) -> &'static str {
        self.as_codec().name()
    }

    fn compress_into(&self, entry: &Entry, out: &mut CompressedBuf) {
        self.as_codec().compress_into(entry, out)
    }

    fn decompress_into(
        &self,
        data: &[u8],
        bits: usize,
        out: &mut Entry,
    ) -> Result<(), DecodeError> {
        self.as_codec().decompress_into(data, bits, out)
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_codec().name())
    }
}

/// The registry behind CLI codec selection: resolves a stable name to its
/// static [`Codec`] instance, or `None` for unknown names.
///
/// Binaries pass `--codec <name>` strings straight through here; the known
/// names are those of [`CodecKind::ALL`].
pub fn codec_by_name(name: &str) -> Option<&'static dyn Codec> {
    CodecKind::from_name(name).map(CodecKind::as_codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must stay object-safe: the registry and the device model
    /// both hand out `&dyn Codec`.
    fn _object_safe(codec: &dyn Codec, entry: &Entry, buf: &mut CompressedBuf) {
        codec.compress_into(entry, buf);
    }

    fn ramp_entry() -> Entry {
        let mut e = [0u8; ENTRY_BYTES];
        for (i, c) in e.chunks_exact_mut(4).enumerate() {
            c.copy_from_slice(&(1000u32 + 3 * i as u32).to_le_bytes());
        }
        e
    }

    #[test]
    fn registry_resolves_all_names() {
        for kind in CodecKind::ALL {
            let name = Codec::name(&kind);
            let codec = codec_by_name(name).expect("registered");
            assert_eq!(codec.name(), name);
            assert_eq!(CodecKind::from_name(name), Some(kind));
            assert_eq!(kind.to_string(), name);
        }
        assert!(codec_by_name("lz4").is_none());
        assert_eq!(CodecKind::from_name("zero-rle"), Some(CodecKind::Zero));
    }

    #[test]
    fn registry_lookup_is_case_insensitive() {
        for (kind, upper) in [
            (CodecKind::Bpc, "BPC"),
            (CodecKind::Bdi, "Bdi"),
            (CodecKind::Fpc, "fPc"),
            (CodecKind::Zero, "ZERO"),
            (CodecKind::Zero, "Zero-RLE"),
        ] {
            assert_eq!(CodecKind::from_name(upper), Some(kind), "{upper}");
            assert_eq!(
                codec_by_name(upper).map(|c| c.name()),
                Some(Codec::name(&kind))
            );
        }
        assert!(CodecKind::from_name("LZ4").is_none());
    }

    #[test]
    fn compress_into_matches_allocating_path() {
        let entry = ramp_entry();
        let mut buf = CompressedBuf::new();
        for kind in CodecKind::ALL {
            kind.compress_into(&entry, &mut buf);
            let owned = kind.compress(&entry);
            assert_eq!(buf.bits(), owned.bits(), "{kind}: bit length differs");
            assert_eq!(buf.data(), owned.data(), "{kind}: bitstream differs");
            assert_eq!(buf.algorithm(), owned.algorithm());
            assert_eq!(buf.size_class(), owned.size_class());
            assert_eq!(buf.sectors(), owned.sectors());
        }
    }

    #[test]
    fn buffer_capacity_is_reused() {
        let mut buf = CompressedBuf::new();
        let mut random = [0u8; ENTRY_BYTES];
        let mut s = 1u64;
        for b in random.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (s >> 33) as u8;
        }
        // First encode of an incompressible entry grows to the high-water
        // mark; later (smaller) encodes must not reallocate.
        CodecKind::Bpc.compress_into(&random, &mut buf);
        let cap = buf.data.capacity();
        for _ in 0..8 {
            CodecKind::Bpc.compress_into(&ramp_entry(), &mut buf);
            CodecKind::Bpc.compress_into(&random, &mut buf);
            assert_eq!(buf.data.capacity(), cap, "scratch capacity must persist");
        }
    }

    #[test]
    fn decompress_into_ignores_trailing_padding() {
        // Sector-aligned storage pads streams with zero bytes; decoders must
        // decode the prefix and ignore the rest, as the device relies on.
        let entry = ramp_entry();
        let mut buf = CompressedBuf::new();
        for kind in CodecKind::ALL {
            kind.compress_into(&entry, &mut buf);
            let mut padded = buf.data().to_vec();
            padded.resize(padded.len() + 32, 0);
            let mut out = [0u8; ENTRY_BYTES];
            kind.decompress_into(&padded, padded.len() * 8, &mut out)
                .expect("padded stream decodes");
            assert_eq!(out, entry, "{kind}: padded round-trip");
        }
    }

    #[test]
    fn size_class_into_special_cases_zero() {
        let mut buf = CompressedBuf::new();
        assert_eq!(
            CodecKind::Zero.size_class_into(&[0u8; ENTRY_BYTES], &mut buf),
            SizeClass::B0
        );
        let entry = ramp_entry();
        for kind in CodecKind::ALL {
            assert_eq!(
                kind.size_class_into(&entry, &mut buf),
                kind.size_class_of(&entry),
                "{kind}: classification paths disagree"
            );
        }
    }

    #[test]
    fn shim_rejects_wrong_algorithm() {
        let c = Compressed::new("bdi", 4, vec![0]);
        assert!(matches!(
            CodecKind::Bpc.decompress(&c),
            Err(DecodeError::WrongAlgorithm {
                found: "bdi",
                expected: "bpc",
            })
        ));
    }

    #[test]
    fn empty_buffer_reports_neutral_state() {
        let buf = CompressedBuf::with_capacity(160);
        assert_eq!(buf.bits(), 0);
        assert_eq!(buf.bytes(), 0);
        assert_eq!(buf.algorithm(), "");
        assert!(buf.data().is_empty());
        assert_eq!(buf.size_class(), SizeClass::B0);
    }
}
