//! HPC oversubscription scenario: Buddy Compression versus Unified Memory.
//!
//! Run with `cargo run --release --example hpc_oversubscription`.
//!
//! The paper's motivating comparison (§4.3): an HPC workload that no longer
//! fits device memory can either rely on UM page migration (which thrashes)
//! or run compressed with Buddy. We drive both models with the same
//! 360.ilbdc-style access stream at 30% oversubscription and compare.

use buddy_compression::buddy_core::{choose_targets, ProfileConfig};
use buddy_compression::gpu_sim::{Engine, ExecConfig, Fidelity, GpuConfig, MemoryMode};
use buddy_compression::unified_memory::{native_baseline, simulate, PageAccess, Policy, UmConfig};
use buddy_compression::workloads::{by_name, Scale};
use buddy_compression::{benchmark_requests, profile_benchmark, BenchmarkLayout};

const ENTRIES_PER_PAGE: u64 = (64 << 10) / 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut bench = by_name("360.ilbdc").expect("known benchmark");
    bench.scale = Scale {
        divisor: 512.0,
        floor_bytes: 4 << 20,
    };
    let accesses = 200_000usize;
    let oversub = 0.30;

    // --- Unified Memory at 30% oversubscription. ---
    let footprint_pages = bench.total_entries() / ENTRIES_PER_PAGE;
    let page_trace = || {
        bench.trace(7).take(accesses).map(|a| PageAccess {
            page: a.entry / ENTRIES_PER_PAGE,
            bytes: a.sector_count() * 32,
            write: a.write,
        })
    };
    let native = native_baseline(page_trace(), &UmConfig::default());
    let device_bytes = ((footprint_pages as f64) * (1.0 - oversub)) as u64 * (64 << 10);
    let um = simulate(
        page_trace(),
        Policy::UnifiedMemory,
        &UmConfig {
            device_bytes,
            ..UmConfig::default()
        },
    );
    let pinned = simulate(
        page_trace(),
        Policy::PinnedHost,
        &UmConfig {
            device_bytes,
            ..UmConfig::default()
        },
    );
    println!(
        "Unified Memory at {:.0}% oversubscription:",
        100.0 * oversub
    );
    println!(
        "  UM migration : {:.1}x slowdown ({} faults)",
        um.slowdown_vs(&native),
        um.faults
    );
    println!(
        "  pinned host  : {:.1}x slowdown",
        pinned.slowdown_vs(&native)
    );

    // --- Buddy Compression: same workload, compressed in place. ---
    let profiles = profile_benchmark(&bench, 2048, 7);
    let outcome = choose_targets(&profiles, &ProfileConfig::default());
    println!(
        "\nBuddy Compression achieves {:.2}x device compression — the workload fits again:",
        outcome.device_compression_ratio()
    );
    let gpu = GpuConfig::p100().with_link_bandwidth(50.0);
    let exec = ExecConfig::from_profile(&gpu, bench.access.mlp, 45.0, accesses as u64);
    let baseline = {
        let layout = BenchmarkLayout::uncompressed(&bench);
        Engine::new(gpu, exec, MemoryMode::Uncompressed, Fidelity::Fast, &layout)
            .run(&mut benchmark_requests(&bench, 7))
    };
    let buddy = {
        let layout = BenchmarkLayout::new(&bench, &outcome, 0.9, 7);
        Engine::new(gpu, exec, MemoryMode::Buddy, Fidelity::Fast, &layout)
            .run(&mut benchmark_requests(&bench, 7))
    };
    let slowdown = 1.0 / buddy.speedup_vs(&baseline);
    println!("  buddy @ 50 GB/s link: {slowdown:.2}x vs ideal GPU (paper: at most 1.67x, §4.3)");
    println!(
        "  buddy accesses: {:.2}% of memory accesses",
        100.0 * buddy.buddy_fraction()
    );
    Ok(())
}
