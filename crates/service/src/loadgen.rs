//! Open-loop multi-tenant load harness.
//!
//! The pool's own loadgen (`buddy_pool::loadgen`) is **closed-loop**: each
//! client issues its next batch as soon as the previous one finishes, so
//! under overload the *offered* rate silently collapses to the achieved
//! rate and latency looks fine — the classic coordinated-omission trap.
//! This harness is **open-loop**: each tenant's arrivals follow a
//! deterministic Poisson schedule ([`workloads::ArrivalSchedule`]) that
//! does not care how the service is doing. Overload therefore shows up
//! where a capacity planner needs it:
//!
//! * **queueing delay** — measured from the *scheduled* arrival time, not
//!   the dequeue time, so producer lateness and queue residence both
//!   count;
//! * **shed load** — each tenant's queue is a bounded
//!   [`sync_channel`]; when the consumer
//!   cannot keep up the producer's `try_send` fails and the op is counted
//!   as shed instead of silently stretching the schedule.
//!
//! Only the *schedule* is deterministic (seeded); the measured delays are
//! wall-clock and machine-dependent, which is the point — the `tenancy`
//! figure normalizes by sweeping offered rate as a multiple of measured
//! capacity.

use crate::{AdmissionPolicy, BuddyService, ServiceAllocId, ServiceError};
use buddy_obs::{trace, Histogram, SpanKind};
use buddy_pool::loadgen::LatencyPercentiles;
use buddy_pool::{Entry, PoolConfig, TargetRatio, ENTRY_BYTES};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::time::{Duration, Instant};
use workloads::{ArrivalSchedule, EntryClass};

/// One tenant's traffic plan.
#[derive(Debug, Clone)]
pub struct TenantPlan {
    /// Tenant name (must be unique within the run).
    pub name: String,
    /// Quota in compressed device bytes (`u64::MAX` for unlimited).
    pub quota_bytes: u64,
    /// Admission policy on quota breach.
    pub policy: AdmissionPolicy,
    /// Offered arrival rate, operations per second.
    pub rate_per_sec: f64,
    /// Arrivals to schedule (the run ends when every tenant's schedule is
    /// exhausted and its queue drained).
    pub ops: u64,
    /// Entries per allocation.
    pub entries_per_alloc: u64,
    /// Target compression ratio requested for every allocation.
    pub target: TargetRatio,
    /// Live allocations the tenant builds up before switching to writes;
    /// beyond it, every `working_set`-th op frees the oldest allocation
    /// and re-allocates (steady-state churn).
    pub working_set: usize,
}

impl TenantPlan {
    /// A plan with `ops` arrivals at `rate_per_sec`, default shape: 64
    /// entries per allocation at R2, a working set of 8 allocations,
    /// unlimited quota, reject policy.
    pub fn new(name: &str, rate_per_sec: f64, ops: u64) -> Self {
        Self {
            name: name.to_string(),
            quota_bytes: u64::MAX,
            policy: AdmissionPolicy::Reject,
            rate_per_sec,
            ops,
            entries_per_alloc: 64,
            target: TargetRatio::R2,
            working_set: 8,
        }
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Pool the service fronts.
    pub pool: PoolConfig,
    /// One plan per tenant.
    pub tenants: Vec<TenantPlan>,
    /// Bound of each tenant's arrival queue; a full queue sheds.
    pub queue_depth: usize,
    /// Entries written per write op.
    pub batch_entries: usize,
    /// Base seed for schedules and entry contents.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            pool: PoolConfig::default(),
            tenants: Vec::new(),
            queue_depth: 64,
            batch_entries: 16,
            seed: 0x0B0D_D1E5,
        }
    }
}

/// Per-tenant outcome of an open-loop run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Arrivals the schedule offered.
    pub offered: u64,
    /// Operations that completed (including ones that failed admission —
    /// a rejection is an answered request).
    pub completed: u64,
    /// Arrivals dropped because the tenant's queue was full.
    pub shed: u64,
    /// Allocation attempts denied by quota or capacity.
    pub rejected: u64,
    /// Allocations admitted below the requested target.
    pub demoted: u64,
    /// Uncompressed bytes across all granted allocations (cumulative).
    pub granted_logical_bytes: u64,
    /// Compressed device bytes reserved across all granted allocations
    /// (cumulative, at the granted — possibly demoted — target).
    pub granted_device_bytes: u64,
    /// Queueing delay (scheduled arrival → dequeue), percentiles.
    pub queue_delay: LatencyPercentiles,
    /// Service time (dequeue → completion), percentiles.
    pub service_time: LatencyPercentiles,
    /// Completed operations per second over the tenant's active window.
    pub achieved_per_sec: f64,
}

impl TenantReport {
    /// Fraction of offered arrivals that were shed.
    pub fn shed_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed as f64 / self.offered as f64
    }

    /// Effective compression ratio across everything the tenant was
    /// granted (uncompressed bytes over reserved device bytes; demotions
    /// push it up). 1.0 when nothing was granted.
    pub fn effective_ratio(&self) -> f64 {
        if self.granted_device_bytes == 0 {
            return 1.0;
        }
        self.granted_logical_bytes as f64 / self.granted_device_bytes as f64
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Per-tenant results, in plan order.
    pub tenants: Vec<TenantReport>,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
}

impl OpenLoopReport {
    /// Total offered arrivals across tenants.
    pub fn offered(&self) -> u64 {
        self.tenants.iter().map(|t| t.offered).sum()
    }

    /// Total completed operations across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total shed arrivals across tenants.
    pub fn shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Completed operations per second across the whole run.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }
}

/// What one producer thread hands its consumer: the op's scheduled
/// arrival offset from the run start, in nanoseconds.
type ScheduledNs = u64;

/// Paces one tenant's arrival schedule against the wall clock, pushing
/// scheduled offsets into the bounded queue. Returns (offered, shed).
fn produce(
    plan: &TenantPlan,
    tenant_index: u64,
    seed: u64,
    start: Instant,
    tx: &SyncSender<ScheduledNs>,
) -> (u64, u64) {
    let mut offered = 0u64;
    let mut shed = 0u64;
    let schedule = ArrivalSchedule::per_tenant(plan.rate_per_sec, seed, tenant_index);
    for sched_ns in schedule.take(plan.ops as usize) {
        let deadline = start + Duration::from_nanos(sched_ns);
        // Sleep toward the deadline; spin the tail so sub-millisecond
        // inter-arrival gaps do not collapse into timer granularity.
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let remaining = deadline - now;
            if remaining > Duration::from_micros(500) {
                std::thread::sleep(remaining - Duration::from_micros(200));
            } else {
                // Yield, don't spin: a hot producer on a small machine
                // would starve its own consumer off the core.
                std::thread::yield_now();
            }
        }
        offered += 1;
        match tx.try_send(sched_ns) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => shed += 1,
            // The consumer is gone (panicked); stop offering.
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    (offered, shed)
}

/// Drains one tenant's queue against the service: builds up the working
/// set, then alternates writes with periodic churn. Returns the latency
/// histograms and op counts — fixed-size [`Histogram`]s, so the harness's
/// memory cost no longer scales with `ops`.
#[derive(Default)]
struct ConsumerOutcome {
    completed: u64,
    rejected: u64,
    demoted: u64,
    granted_logical_bytes: u64,
    granted_device_bytes: u64,
    queue_delay: Histogram,
    service_time: Histogram,
    active: Duration,
}

fn consume(
    service: &BuddyService,
    plan: &TenantPlan,
    seed: u64,
    start: Instant,
    rx: &Receiver<ScheduledNs>,
) -> ConsumerOutcome {
    let tenant = match service.register_tenant(&plan.name, plan.quota_bytes, plan.policy) {
        Ok(t) => t,
        Err(_) => return ConsumerOutcome::default(),
    };
    let batch = plan.batch(seed);
    let mut live: Vec<ServiceAllocId> = Vec::with_capacity(plan.working_set);
    let mut outcome = ConsumerOutcome::default();
    let consumer_start = Instant::now();
    let mut seq = 0u64;
    while let Ok(sched_ns) = rx.recv() {
        let dequeued = Instant::now();
        let deadline = start + Duration::from_nanos(sched_ns);
        let wait = dequeued.saturating_duration_since(deadline);
        trace::record_span(SpanKind::QueueWait, wait);
        outcome.queue_delay.record_duration(wait);
        // Steady-state churn: once warm, recycle the oldest allocation
        // every `working_set`-th op so admission stays exercised.
        let churn = !live.is_empty()
            && live.len() >= plan.working_set
            && seq % plan.working_set as u64 == 0;
        if churn {
            let oldest = live.remove(0);
            let _ = service.free(tenant, oldest);
        }
        if live.len() < plan.working_set {
            match service.alloc(tenant, &plan.name, plan.entries_per_alloc, plan.target) {
                Ok(grant) => {
                    if grant.demoted {
                        outcome.demoted += 1;
                    }
                    outcome.granted_logical_bytes += plan.entries_per_alloc * ENTRY_BYTES as u64;
                    outcome.granted_device_bytes +=
                        plan.entries_per_alloc * grant.target.device_bytes_per_entry() as u64;
                    live.push(grant.id);
                }
                Err(ServiceError::QuotaExceeded { .. }) | Err(ServiceError::Device(_)) => {
                    outcome.rejected += 1;
                }
                Err(_) => {}
            }
        } else {
            let idx = (seq % live.len() as u64) as usize;
            let span = plan.entries_per_alloc.saturating_sub(batch.len() as u64) + 1;
            let begin = (seq * batch.len() as u64) % span;
            let _ = service.write_entries(tenant, live[idx], begin, &batch);
        }
        outcome.service_time.record_duration(dequeued.elapsed());
        outcome.completed += 1;
        seq += 1;
    }
    for id in live {
        let _ = service.free(tenant, id);
    }
    outcome.active = consumer_start.elapsed();
    outcome
}

impl TenantPlan {
    /// The tenant's write palette: a deterministic mixed-compressibility
    /// batch (zero / noisy / ramp / random round-robin) so codec work is
    /// realistic without per-op generation cost.
    fn batch(&self, seed: u64) -> Vec<Entry> {
        let classes = [
            EntryClass::Zero,
            EntryClass::Noisy { noise_bits: 8 },
            EntryClass::Ramp { stride_bits: 4 },
            EntryClass::Random,
        ];
        (0..self.entries_per_alloc.min(64))
            .map(|i| classes[(i % classes.len() as u64) as usize].generate(seed ^ i))
            .collect()
    }
}

/// Runs one open-loop experiment: a fresh service, one producer and one
/// consumer thread per tenant, bounded queues in between.
pub fn run(config: &OpenLoopConfig) -> OpenLoopReport {
    let service = BuddyService::new(config.pool);
    run_against(&service, config)
}

/// As [`run`], but against a caller-provided service — lets a figure
/// pre-load background tenants (e.g. a noisy neighbour) before opening
/// the loop. Tenants named in `config` must not already be registered.
pub fn run_against(service: &BuddyService, config: &OpenLoopConfig) -> OpenLoopReport {
    let run_start = Instant::now();
    let mut reports = Vec::with_capacity(config.tenants.len());
    std::thread::scope(|scope| {
        let mut lanes = Vec::with_capacity(config.tenants.len());
        for (index, plan) in config.tenants.iter().enumerate() {
            let (tx, rx) = sync_channel::<ScheduledNs>(config.queue_depth.max(1));
            let seed = config.seed;
            let producer = scope.spawn({
                let plan = plan.clone();
                move || produce(&plan, index as u64, seed, run_start, &tx)
            });
            let consumer = scope.spawn({
                let plan = plan.clone();
                let service = &*service;
                move || consume(service, &plan, seed ^ index as u64, run_start, &rx)
            });
            lanes.push((plan, producer, consumer));
        }
        for (plan, producer, consumer) in lanes {
            let (offered, shed) = producer.join().unwrap_or((0, 0));
            let outcome = consumer.join().unwrap_or_default();
            reports.push(tenant_report(plan, offered, shed, outcome));
        }
    });
    OpenLoopReport {
        tenants: reports,
        elapsed: run_start.elapsed(),
    }
}

fn tenant_report(
    plan: &TenantPlan,
    offered: u64,
    shed: u64,
    outcome: ConsumerOutcome,
) -> TenantReport {
    let secs = outcome.active.as_secs_f64();
    TenantReport {
        name: plan.name.clone(),
        offered,
        completed: outcome.completed,
        shed,
        rejected: outcome.rejected,
        demoted: outcome.demoted,
        granted_logical_bytes: outcome.granted_logical_bytes,
        granted_device_bytes: outcome.granted_device_bytes,
        queue_delay: LatencyPercentiles::from_snapshot(&outcome.queue_delay.snapshot()),
        service_time: LatencyPercentiles::from_snapshot(&outcome.service_time.snapshot()),
        achieved_per_sec: if secs > 0.0 {
            outcome.completed as f64 / secs
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buddy_pool::{CodecKind, DeviceConfig};

    fn small_pool() -> PoolConfig {
        PoolConfig {
            shards: 2,
            shard_config: DeviceConfig {
                device_capacity: 4 << 20,
                carve_out_factor: 3,
            },
            codec: CodecKind::Bpc,
        }
    }

    #[test]
    fn underload_mostly_completes_and_conserves_arrivals() {
        // Gentle offered rate (sub-millisecond service times, 500 µs
        // gaps): virtually everything should complete. Scheduler noise on
        // a loaded single-core runner can still shed a little, so the
        // hard assertions are conservation and a bounded shed fraction,
        // not exact zeros.
        let config = OpenLoopConfig {
            pool: small_pool(),
            tenants: vec![
                TenantPlan::new("a", 2_000.0, 100),
                TenantPlan::new("b", 2_000.0, 100),
            ],
            ..OpenLoopConfig::default()
        };
        let report = run(&config);
        assert_eq!(report.offered(), 200);
        assert_eq!(report.completed() + report.shed(), 200);
        for t in &report.tenants {
            assert_eq!(t.offered, 100);
            assert_eq!(t.completed + t.shed, 100);
            assert!(
                t.shed_fraction() < 0.25,
                "underloaded tenant shed too much: {t:?}"
            );
            assert_eq!(t.rejected, 0);
            assert!(t.queue_delay.p99_us >= t.queue_delay.p50_us);
            assert!(t.achieved_per_sec > 0.0);
        }
    }

    #[test]
    fn quota_pressure_is_visible_in_the_report() {
        let mut plan = TenantPlan::new("pinched", 200_000.0, 300);
        // Quota fits only half the working set at the requested target.
        plan.quota_bytes = 4 * plan.entries_per_alloc * plan.target.device_bytes_per_entry() as u64;
        let config = OpenLoopConfig {
            pool: small_pool(),
            tenants: vec![plan],
            ..OpenLoopConfig::default()
        };
        let report = run(&config);
        let t = &report.tenants[0];
        assert_eq!(t.completed + t.shed, t.offered);
        assert!(
            t.rejected > 0,
            "quota-pinched tenant must see rejections, got {t:?}"
        );
    }

    #[test]
    fn demote_policy_converts_rejections_into_demotions() {
        let mut plan = TenantPlan::new("flex", 200_000.0, 300);
        plan.policy = AdmissionPolicy::Demote;
        // Quota fits three allocations at the asked R2 plus one more only
        // at R4 — the fourth admission must demote rather than reject.
        plan.quota_bytes = plan.entries_per_alloc
            * (3 * TargetRatio::R2.device_bytes_per_entry() as u64
                + TargetRatio::R4.device_bytes_per_entry() as u64);
        let config = OpenLoopConfig {
            pool: small_pool(),
            tenants: vec![plan],
            ..OpenLoopConfig::default()
        };
        let report = run(&config);
        let t = &report.tenants[0];
        assert!(
            t.demoted > 0,
            "demote policy must admit below target, got {t:?}"
        );
    }

    #[test]
    fn shed_fraction_arithmetic() {
        let r = TenantReport {
            name: "x".into(),
            offered: 100,
            completed: 75,
            shed: 25,
            rejected: 0,
            demoted: 0,
            granted_logical_bytes: 256,
            granted_device_bytes: 128,
            queue_delay: LatencyPercentiles::default(),
            service_time: LatencyPercentiles::default(),
            achieved_per_sec: 0.0,
        };
        assert!((r.shed_fraction() - 0.25).abs() < 1e-12);
    }
}
