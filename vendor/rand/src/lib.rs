//! Minimal, offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace pins `rand` to this shim (see `[workspace.dependencies]` in
//! the root manifest). It implements exactly the surface the workspace uses:
//!
//! - [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seedable via [`SeedableRng::seed_from_u64`],
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and [`Rng::fill`].
//!
//! Streams are deterministic per seed but are **not** bit-identical to the
//! real crate's; everything in this workspace treats the RNG statistically,
//! so swapping the real `rand` back in changes no test outcomes by design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing generation methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills the byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the standard (uniform over the domain) distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision (matches `rand`'s
    /// `Standard` for `f32`).
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mul_sample(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = widening_mul_sample(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased-enough uniform sample in `[0, span)` via 64×64→128 widening
/// multiply (Lemire's method without the rejection step; the bias is
/// < 2⁻⁶⁴·span, irrelevant for simulation workloads).
fn widening_mul_sample<R: RngCore>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                let v = self.start + unit * (self.end - self.start);
                // unit < 1, but the multiply-add can still round up to
                // `end`; the half-open contract excludes it, so step down.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                // Closed unit interval [0, 1] so `end` is reachable, as in
                // the real rand's inclusive float ranges.
                let unit = rng.next_u64() as $t / u64::MAX as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Small, fast pseudo-random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm family the real `SmallRng` uses on
    /// 64-bit platforms. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro
            // authors (and used by rand_xoshiro's seed_from_u64).
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=3usize);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_range_covers_small_spans() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_randomizes_bytes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn inclusive_float_range_reaches_both_endpoints() {
        // A saturated generator must map to exactly `end` (and a zeroed one
        // to `start`) — rand 0.8's inclusive ranges include the endpoint.
        struct ConstRng(u64);
        impl crate::RngCore for ConstRng {
            fn next_u32(&mut self) -> u32 {
                (self.0 >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                dest.fill(0);
            }
        }
        assert_eq!(ConstRng(u64::MAX).gen_range(2.0f64..=5.0), 5.0);
        assert_eq!(ConstRng(0).gen_range(2.0f64..=5.0), 2.0);
        assert_eq!(ConstRng(u64::MAX).gen_range(-1.0f32..=1.0), 1.0);
        // Degenerate inclusive range is fine.
        assert_eq!(ConstRng(12345).gen_range(3.0f64..=3.0), 3.0);
    }

    #[test]
    fn half_open_float_range_excludes_upper_bound() {
        struct ConstRng(u64);
        impl crate::RngCore for ConstRng {
            fn next_u32(&mut self) -> u32 {
                (self.0 >> 32) as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                dest.fill(0);
            }
        }
        // Narrow ranges where start + unit*(end-start) rounds up to `end`
        // for a near-max draw; the half-open contract must still hold.
        let end = f32::from_bits(1.0f32.to_bits() + 1);
        let v = ConstRng(u64::MAX).gen_range(1.0f32..end);
        assert!(v < end, "half-open range returned its upper bound {v}");
        let v = ConstRng(u64::MAX).gen_range(0.1f32..0.3000001f32);
        assert!(v < 0.3000001f32);
        let v = ConstRng(u64::MAX).gen_range(2.0f64..f64::from_bits(2.0f64.to_bits() + 1));
        assert!(v < f64::from_bits(2.0f64.to_bits() + 1));
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
