//! The controlled scheduler: runs a model's threads one at a time (a baton
//! handed over at every instrumented operation) and drives a depth-first
//! search over every scheduling and value-injection decision, within a
//! bounded preemption and step budget.
//!
//! # How exploration works
//!
//! An *execution* runs the model once under a fully deterministic schedule.
//! Whenever more than one continuation is possible — which thread runs
//! next, or which history entry a stale-tolerant load observes — the
//! running thread consults the **script**: a prefix of decision indices
//! replayed from the previous execution, followed by default choices
//! (choice 0 = keep running the current thread / observe the latest
//! value). Every decision point records how many options it had; after the
//! execution finishes the driver backtracks to the deepest decision with
//! an untried alternative and reruns with the extended script. The search
//! is exhaustive over the bounded space: it terminates when no decision
//! has alternatives left, or when the execution budget runs out.
//!
//! Bounds (all in [`Config`]):
//!
//! * `max_preemptions` — context switches at points where the running
//!   thread could have continued. Most protocol bugs need only 2–3
//!   preemptions (research behind loom/shuttle's defaults), and the bound
//!   is what keeps the space tractable.
//! * `max_steps` — per-execution instrumented-op cap; exceeding it
//!   *prunes* the path (counted, never silently dropped). This is what
//!   bounds spin loops: models retry a bounded number of times and prune.
//! * `max_executions` — total DFS budget; exceeding it reports a
//!   non-exhaustive pass.
//!
//! A failed assertion, a deadlock, or an explicit [`fail`] stops the
//! search and produces a [`Report`]: the interleaved step trace, the same
//! trace grouped thread by thread, and the decision vector that replays
//! the schedule via [`Config::replay`].

use crate::mem::Memory;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Exploration bounds and replay control.
#[derive(Debug, Clone)]
pub struct Config {
    /// Voluntary context-switch budget per execution.
    pub max_preemptions: usize,
    /// Instrumented-op cap per execution; exceeding prunes the path.
    pub max_steps: usize,
    /// Total execution budget for the DFS.
    pub max_executions: usize,
    /// When set, run exactly this decision vector once (counterexample
    /// replay) instead of searching.
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_preemptions: 3,
            max_steps: 600,
            max_executions: 250_000,
            replay: None,
        }
    }
}

impl Config {
    /// A config that replays one recorded schedule.
    pub fn replay(choices: Vec<usize>) -> Self {
        Self {
            replay: Some(choices),
            ..Self::default()
        }
    }
}

/// One recorded instrumented operation.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Model thread that executed the op.
    pub thread: usize,
    /// Human-readable op description (location label, ordering, value).
    pub op: String,
}

/// A counterexample: the schedule that violated a model assertion.
#[derive(Debug, Clone)]
pub struct Report {
    /// Model name as passed to [`explore`].
    pub name: String,
    /// The assertion / deadlock message.
    pub message: String,
    /// Interleaved steps in execution order.
    pub trace: Vec<TraceStep>,
    /// The decision vector; feed to [`Config::replay`] to rerun exactly
    /// this schedule.
    pub choices: Vec<usize>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {}", self.name)?;
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "replay choices: {:?}", self.choices)?;
        writeln!(f, "schedule ({} steps):", self.trace.len())?;
        for (i, s) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>4}  T{}  {}", i + 1, s.thread, s.op)?;
        }
        writeln!(f, "thread-by-thread:")?;
        let max_tid = self.trace.iter().map(|s| s.thread).max().unwrap_or(0);
        for tid in 0..=max_tid {
            writeln!(f, "  T{tid}:")?;
            for (i, s) in self
                .trace
                .iter()
                .enumerate()
                .filter(|(_, s)| s.thread == tid)
            {
                writeln!(f, "    [{:>4}] {}", i + 1, s.op)?;
            }
        }
        Ok(())
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub enum Outcome {
    /// Every explored schedule upheld the model's assertions.
    Pass {
        /// Executions run (completed + pruned).
        executions: usize,
        /// Paths cut by the step budget (bounded spin retries).
        pruned: usize,
        /// True when the bounded space was fully enumerated; false when
        /// `max_executions` ran out first.
        exhausted: bool,
    },
    /// A schedule violated an assertion (or deadlocked).
    Counterexample(Box<Report>),
}

impl Outcome {
    /// The counterexample report, if the exploration found one.
    pub fn counterexample(&self) -> Option<&Report> {
        match self {
            Outcome::Counterexample(r) => Some(r),
            Outcome::Pass { .. } => None,
        }
    }

    /// True when every explored schedule passed.
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }
}

/// Marker payload for pruned paths (step budget / abort unwinding); the
/// thread wrapper recognizes it and does not treat it as a failure.
struct Pruned;

/// Thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting on the model mutex keyed by address.
    BlockedOnMutex(usize),
    /// Waiting for a thread to finish.
    BlockedOnJoin(usize),
    Finished,
}

/// Why the execution is unwinding early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abort {
    Pruned,
    Failed,
}

#[derive(Debug)]
pub(crate) struct ExecState {
    pub(crate) mem: Memory,
    threads: Vec<Status>,
    current: usize,
    script: Vec<usize>,
    decisions: Vec<(usize, usize)>,
    preemptions_left: usize,
    steps_left: usize,
    trace: Vec<TraceStep>,
    failure: Option<String>,
    abort: Option<Abort>,
    live: usize,
    /// Model mutexes: address → holder tid (if held).
    mutexes: HashMap<usize, Option<usize>>,
    /// Labels for trace rendering: location address → name.
    labels: HashMap<usize, &'static str>,
}

#[derive(Debug)]
pub(crate) struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Exec>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The executing model thread's context, if any — `None` means the shim is
/// running outside the checker and must behave exactly like `std::sync`.
pub(crate) fn ctx() -> Option<(Arc<Exec>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn lock_state(exec: &Exec) -> MutexGuard<'_, ExecState> {
    exec.state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl ExecState {
    /// Picks `choice` among `options` alternatives, following the script
    /// prefix and recording the decision. Single-option points record
    /// nothing (they can never be backtracked).
    pub(crate) fn decide(&mut self, options: usize) -> usize {
        if options <= 1 {
            return 0;
        }
        let i = self.decisions.len();
        let choice = self.script.get(i).copied().unwrap_or(0).min(options - 1);
        self.decisions.push((choice, options));
        choice
    }

    fn runnable_after(&self, tid: usize) -> Vec<usize> {
        // Current thread first (choice 0 = no preemption), then the rest
        // in tid order — a stable, deterministic option list.
        let mut opts: Vec<usize> = Vec::new();
        if self.threads.get(tid) == Some(&Status::Runnable) {
            opts.push(tid);
        }
        for (t, s) in self.threads.iter().enumerate() {
            if t != tid && *s == Status::Runnable {
                opts.push(t);
            }
        }
        opts
    }

    pub(crate) fn label_of(&self, loc: usize) -> String {
        match self.labels.get(&loc) {
            Some(name) => (*name).to_string(),
            None => format!("a@{loc:#x}"),
        }
    }

    pub(crate) fn set_label(&mut self, loc: usize, name: &'static str) {
        self.labels.insert(loc, name);
    }
}

impl Exec {
    fn new(script: Vec<usize>, cfg: &Config) -> Self {
        Self {
            state: Mutex::new(ExecState {
                mem: Memory::default(),
                threads: Vec::new(),
                current: 0,
                script,
                decisions: Vec::new(),
                preemptions_left: cfg.max_preemptions,
                steps_left: cfg.max_steps,
                trace: Vec::new(),
                failure: None,
                abort: None,
                live: 0,
                mutexes: HashMap::new(),
                labels: HashMap::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a new model thread; returns its tid.
    fn register_thread(&self, st: &mut ExecState) -> usize {
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        st.mem.ensure_thread(tid);
        st.live += 1;
        tid
    }

    /// Scheduling point: consumes a step, possibly switches threads, and
    /// returns with the baton (and the state lock) back at `tid`.
    fn schedule<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> MutexGuard<'a, ExecState> {
        if st.abort.is_some() {
            drop(st);
            std::panic::panic_any(Pruned);
        }
        if st.steps_left == 0 {
            st.abort = Some(Abort::Pruned);
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(Pruned);
        }
        st.steps_left -= 1;

        let self_runnable = st.threads.get(tid) == Some(&Status::Runnable);
        let mut opts = st.runnable_after(tid);
        if self_runnable && st.preemptions_left == 0 {
            opts.truncate(1); // forced to continue
        }
        if opts.is_empty() {
            // Every thread is blocked: a real deadlock schedule.
            st.failure = Some(format!(
                "deadlock: thread T{tid} blocked with no runnable peer ({:?})",
                st.threads
            ));
            st.abort = Some(Abort::Failed);
            self.cv.notify_all();
            drop(st);
            std::panic::panic_any(Pruned);
        }
        let choice = st.decide(opts.len());
        let target = opts[choice];
        if target != tid {
            if self_runnable {
                st.preemptions_left -= 1;
            }
            st.current = target;
            self.cv.notify_all();
            while st.current != tid && st.abort.is_none() {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            if st.abort.is_some() {
                drop(st);
                std::panic::panic_any(Pruned);
            }
        }
        st
    }

    /// Runs one instrumented operation for `tid`: schedules, executes `f`
    /// against the state, records its trace line.
    pub(crate) fn op<R>(
        self: &Arc<Self>,
        tid: usize,
        f: impl FnOnce(&mut ExecState, usize) -> (R, String),
    ) -> R {
        let st = lock_state(self);
        let mut st = self.schedule(st, tid);
        let (r, desc) = f(&mut st, tid);
        st.trace.push(TraceStep {
            thread: tid,
            op: desc,
        });
        r
    }

    /// Blocking acquire of the model mutex at `loc`; loops until the lock
    /// is free under some schedule.
    pub(crate) fn lock_mutex(self: &Arc<Self>, tid: usize, loc: usize) {
        loop {
            let st = lock_state(self);
            let mut st = self.schedule(st, tid);
            let holder = st.mutexes.entry(loc).or_insert(None);
            if holder.is_none() {
                *holder = Some(tid);
                let label = st.label_of(loc);
                st.trace.push(TraceStep {
                    thread: tid,
                    op: format!("lock {label}"),
                });
                return;
            }
            // Held: block and let schedule() pick someone else next time.
            st.threads[tid] = Status::BlockedOnMutex(loc);
        }
    }

    pub(crate) fn unlock_mutex(self: &Arc<Self>, tid: usize, loc: usize) {
        let mut st = lock_state(self);
        st.mutexes.insert(loc, None);
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedOnMutex(loc) {
                st.threads[t] = Status::Runnable;
            }
        }
        let label = st.label_of(loc);
        st.trace.push(TraceStep {
            thread: tid,
            op: format!("unlock {label}"),
        });
        let aborted = st.abort.is_some();
        self.cv.notify_all();
        drop(st);
        // Guards also unlock while a panic (assertion failure or prune)
        // unwinds through them; scheduling there would panic inside a
        // destructor and abort the process. The state mutation above is
        // all that correctness needs — skip the optional context switch.
        if aborted || std::thread::panicking() {
            return;
        }
        // Unlock is itself a scheduling point: a freshly woken waiter may
        // run before the unlocker's next op.
        let st2 = lock_state(self);
        let _st2 = self.schedule(st2, tid);
    }

    /// Spawns a model thread running `f`; returns its tid.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: usize,
        f: Box<dyn FnOnce() + Send>,
    ) -> usize {
        let child = {
            let mut st = lock_state(self);
            let child = self.register_thread(&mut st);
            st.mem.inherit_view(parent, child);
            st.trace.push(TraceStep {
                thread: parent,
                op: format!("spawn T{child}"),
            });
            child
        };
        let exec = Arc::clone(self);
        std::thread::spawn(move || run_model_thread(exec, child, f));
        // Let the schedule decide whether the child runs first.
        let st = lock_state(self);
        let _st = self.schedule(st, parent);
        child
    }

    /// Blocks until thread `target` finishes.
    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize) {
        loop {
            let st = lock_state(self);
            let mut st = self.schedule(st, tid);
            if st.threads.get(target) == Some(&Status::Finished) {
                // join() synchronizes-with the child's completion:
                // everything the child observed, the joiner now observes.
                st.mem.inherit_view(target, tid);
                st.trace.push(TraceStep {
                    thread: tid,
                    op: format!("join T{target}"),
                });
                return;
            }
            st.threads[tid] = Status::BlockedOnJoin(target);
        }
    }

    /// Marks `tid` finished and hands the baton onward (or completes the
    /// execution).
    fn finish_thread(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = lock_state(self);
        st.threads[tid] = Status::Finished;
        st.live -= 1;
        // A panic on an already-pruned execution is fallout of the prune
        // (other threads unwinding mid-protocol), not a model failure.
        if let Some(msg) = panic_msg {
            if st.abort != Some(Abort::Pruned) {
                if st.failure.is_none() {
                    st.failure = Some(msg);
                }
                st.abort = Some(Abort::Failed);
            }
        }
        for t in 0..st.threads.len() {
            if st.threads[t] == Status::BlockedOnJoin(tid) {
                st.threads[t] = Status::Runnable;
            }
        }
        // Hand the baton to any runnable thread (first in tid order —
        // a forced switch, not a decision: tid is done).
        if let Some(&next) = st.runnable_after(tid).first() {
            st.current = next;
        } else if st.live > 0 && st.abort.is_none() {
            // Everyone left is blocked: deadlock at thread exit.
            st.failure = Some(format!(
                "deadlock: all remaining threads blocked after T{tid} exited ({:?})",
                st.threads
            ));
            st.abort = Some(Abort::Failed);
        }
        self.cv.notify_all();
    }
}

/// Body shared by the root and spawned model threads: install the TLS
/// context, wait for the baton, run, classify the unwind.
fn run_model_thread(exec: Arc<Exec>, tid: usize, f: Box<dyn FnOnce() + Send>) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
    // Wait until granted.
    {
        let mut st = lock_state(&exec);
        while st.current != tid && st.abort.is_none() {
            st = exec
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    let panic_msg = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<Pruned>().is_some() {
                None // pruned/aborted path, not a model failure
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                Some((*s).to_string())
            } else if let Some(s) = payload.downcast_ref::<String>() {
                Some(s.clone())
            } else {
                Some("model thread panicked with a non-string payload".to_string())
            }
        }
    };
    exec.finish_thread(tid, panic_msg);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Fails the current schedule with `message` — the model-level assertion
/// primitive (plain `assert!` works too; this one reads better in traces).
pub fn fail(message: impl Into<String>) -> ! {
    // lint-allow(no-unwrap): panicking IS the violation signal — the model
    // thread's catch_unwind classifies the payload into a counterexample
    panic!("{}", message.into())
}

/// One execution's outcome: the decisions taken (with their branching
/// factors), the failure message if an assertion fired, the step trace,
/// and whether the step budget pruned the run.
struct ExecOutcome {
    decisions: Vec<(usize, usize)>,
    failure: Option<String>,
    trace: Vec<TraceStep>,
    pruned: bool,
}

/// Runs one execution under `script`.
fn run_one(cfg: &Config, script: Vec<usize>, model: &Arc<dyn Fn() + Send + Sync>) -> ExecOutcome {
    let exec = Arc::new(Exec::new(script, cfg));
    {
        let mut st = lock_state(&exec);
        let root = exec.register_thread(&mut st);
        st.current = root;
    }
    let m = Arc::clone(model);
    let root_exec = Arc::clone(&exec);
    let handle = std::thread::spawn(move || run_model_thread(root_exec, 0, Box::new(move || m())));
    // The root thread finishing does not mean the execution is over —
    // spawned threads may still run; wait for live == 0.
    let _ = handle.join();
    let mut st = lock_state(&exec);
    while st.live > 0 {
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
    let pruned = st.abort == Some(Abort::Pruned);
    ExecOutcome {
        decisions: std::mem::take(&mut st.decisions),
        failure: st.failure.take(),
        trace: std::mem::take(&mut st.trace),
        pruned,
    }
}

/// Computes the next DFS script from the decisions of the last execution,
/// or `None` when the space is exhausted.
fn next_script(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    for i in (0..decisions.len()).rev() {
        let (choice, options) = decisions[i];
        if choice + 1 < options {
            let mut script: Vec<usize> = decisions[..i].iter().map(|&(c, _)| c).collect();
            script.push(choice + 1);
            return Some(script);
        }
    }
    None
}

/// Exhaustively explores `model` within `cfg`'s bounds.
///
/// `model` is rerun once per schedule; it must be deterministic apart from
/// the scheduler's decisions (build all state inside the closure, assert
/// invariants with plain `assert!`/[`fail`]).
pub fn explore(name: &str, cfg: Config, model: impl Fn() + Send + Sync + 'static) -> Outcome {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut script = cfg.replay.clone().unwrap_or_default();
    let mut executions = 0usize;
    let mut pruned_count = 0usize;
    loop {
        executions += 1;
        let ExecOutcome {
            decisions,
            failure,
            trace,
            pruned,
        } = run_one(&cfg, script, &model);
        if pruned {
            pruned_count += 1;
        }
        if let Some(message) = failure {
            return Outcome::Counterexample(Box::new(Report {
                name: name.to_string(),
                message,
                trace,
                choices: decisions.iter().map(|&(c, _)| c).collect(),
            }));
        }
        if cfg.replay.is_some() {
            return Outcome::Pass {
                executions,
                pruned: pruned_count,
                exhausted: false,
            };
        }
        match next_script(&decisions) {
            Some(next) if executions < cfg.max_executions => script = next,
            Some(_) => {
                return Outcome::Pass {
                    executions,
                    pruned: pruned_count,
                    exhausted: false,
                }
            }
            None => {
                return Outcome::Pass {
                    executions,
                    pruned: pruned_count,
                    exhausted: true,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::{self, AtomicU64};
    use std::sync::atomic::Ordering;
    use std::sync::Arc as StdArc;

    #[test]
    fn next_script_backtracks_depth_first() {
        assert_eq!(next_script(&[(0, 2), (0, 3)]), Some(vec![0, 1]));
        assert_eq!(next_script(&[(0, 2), (2, 3)]), Some(vec![1]));
        assert_eq!(next_script(&[(1, 2), (2, 3)]), None);
        assert_eq!(next_script(&[]), None);
    }

    #[test]
    fn single_thread_model_passes_in_one_execution() {
        let outcome = explore("trivial", Config::default(), || {
            let a = AtomicU64::new(1);
            assert_eq!(a.load(Ordering::SeqCst), 1);
        });
        match outcome {
            Outcome::Pass {
                executions,
                exhausted,
                ..
            } => {
                assert!(exhausted);
                assert_eq!(executions, 1, "no decision points -> one schedule");
            }
            Outcome::Counterexample(r) => panic!("unexpected counterexample:\n{r}"),
        }
    }

    #[test]
    fn racy_unsynchronized_check_is_caught_and_replayable() {
        // Classic store-buffer-free race: the assert only fails when the
        // child runs between the two parent ops.
        let model = || {
            let flag = StdArc::new(AtomicU64::labelled("flag", 0));
            let f2 = StdArc::clone(&flag);
            let t = shim::spawn(move || {
                f2.store(1, Ordering::SeqCst);
            });
            let seen = flag.load(Ordering::SeqCst);
            t.join();
            assert_eq!(seen, 0, "child store observed before parent load");
        };
        let outcome = explore("racy", Config::default(), model);
        let report = outcome
            .counterexample()
            .expect("race must be found")
            .clone();
        assert!(report.message.contains("child store observed"));
        assert!(report.trace.iter().any(|s| s.op.contains("flag")));
        // The recorded choices replay to the same violation.
        let replayed = explore("racy-replay", Config::replay(report.choices.clone()), model);
        assert!(
            replayed.counterexample().is_some(),
            "replaying the reported choices must reproduce the violation"
        );
    }

    #[test]
    fn deadlock_is_a_counterexample() {
        let outcome = explore("deadlock", Config::default(), || {
            let a = StdArc::new(shim::Mutex::labelled("a", ()));
            let b = StdArc::new(shim::Mutex::labelled("b", ()));
            let (a2, b2) = (StdArc::clone(&a), StdArc::clone(&b));
            let t = shim::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_gb, _ga));
            t.join();
        });
        let report = outcome
            .counterexample()
            .expect("AB-BA must deadlock somewhere");
        assert!(
            report.message.contains("deadlock"),
            "got: {}",
            report.message
        );
    }
}
