//! Per-tenant telemetry: [`Counter`] / [`Gauge`] handles behind a registry
//! with a consistent-enough `snapshot()` → rows API.
//!
//! The metric primitives themselves live in [`buddy_obs::metrics`] — the
//! **only** crate allowed to own raw atomics for metrics (enforced by the
//! `raw-atomic-metric` xtask lint), so there is exactly one place that
//! centralizes the memory-ordering argument. This module re-exports them
//! and layers the tenant dimension on top: which counters exist per
//! tenant, and how they roll up into [`TenantRow`]s.
//!
//! Hot paths never take a lock: the service holds an
//! `Arc<TenantTelemetry>` per tenant and bumps its atomics directly. The
//! registry's internal mutex guards only tenant *registration* and
//! snapshot iteration — both cold.
//!
//! Counter values race their readers by design: a snapshot taken while
//! writers are active may split one logical update (e.g. observe an alloc
//! count without its bytes). Totals are exact once writers are quiescent,
//! the same contract as [`BuddyPool::stats`](buddy_pool::BuddyPool::stats).

pub use buddy_obs::{Counter, Gauge};

use buddy_core::sync::{Mutex, MutexGuard};
use buddy_core::AccessStats;
use std::sync::Arc;

/// The full metric surface of one tenant. All fields are updated lock-free
/// by the service hot paths and read by [`TelemetryRegistry::snapshot`].
#[derive(Debug, Default)]
pub struct TenantTelemetry {
    /// Successful allocations admitted (demoted ones included).
    pub allocs: Counter,
    /// Successful frees.
    pub frees: Counter,
    /// Admission rejections (quota or capacity, after any demotion search).
    pub rejections: Counter,
    /// Admissions granted at a lower target than requested.
    pub demotions: Counter,
    /// Ownership transfers (counted on both sides).
    pub transfers: Counter,
    /// Operations denied because the handle belongs to another tenant.
    pub cross_tenant_denials: Counter,

    /// Mirror of [`AccessStats::reads_device_only`].
    pub reads_device_only: Counter,
    /// Mirror of [`AccessStats::reads_with_buddy`].
    pub reads_with_buddy: Counter,
    /// Mirror of [`AccessStats::writes_device_only`].
    pub writes_device_only: Counter,
    /// Mirror of [`AccessStats::writes_with_buddy`].
    pub writes_with_buddy: Counter,
    /// Mirror of [`AccessStats::device_sectors`].
    pub device_sectors: Counter,
    /// Mirror of [`AccessStats::buddy_sectors`].
    pub buddy_sectors: Counter,
    /// Mirror of [`AccessStats::retargets`].
    pub retargets: Counter,
    /// Mirror of [`AccessStats::moved_sectors`].
    pub moved_sectors: Counter,

    /// Compressed device bytes currently charged against the quota.
    pub used_bytes: Gauge,
    /// The tenant's quota in compressed device bytes.
    pub quota_bytes: Gauge,
    /// Uncompressed bytes represented by the tenant's live allocations.
    pub logical_bytes: Gauge,
    /// Live allocations.
    pub allocations: Gauge,
}

impl TenantTelemetry {
    /// Folds a per-batch [`AccessStats`] delta (from the pool's
    /// `*_collect` paths) into the mirror counters.
    pub fn record_stats(&self, delta: &AccessStats) {
        self.reads_device_only.add(delta.reads_device_only);
        self.reads_with_buddy.add(delta.reads_with_buddy);
        self.writes_device_only.add(delta.writes_device_only);
        self.writes_with_buddy.add(delta.writes_with_buddy);
        self.device_sectors.add(delta.device_sectors);
        self.buddy_sectors.add(delta.buddy_sectors);
        self.retargets.add(delta.retargets);
        self.moved_sectors.add(delta.moved_sectors);
    }

    /// The mirror counters as an [`AccessStats`] value.
    pub fn stats(&self) -> AccessStats {
        AccessStats {
            reads_device_only: self.reads_device_only.get(),
            reads_with_buddy: self.reads_with_buddy.get(),
            writes_device_only: self.writes_device_only.get(),
            writes_with_buddy: self.writes_with_buddy.get(),
            device_sectors: self.device_sectors.get(),
            buddy_sectors: self.buddy_sectors.get(),
            retargets: self.retargets.get(),
            moved_sectors: self.moved_sectors.get(),
        }
    }
}

/// One row of a telemetry snapshot: everything the `service-report` bin
/// prints about a tenant.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant name.
    pub name: String,
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Admission rejections.
    pub rejections: u64,
    /// Demoted admissions.
    pub demotions: u64,
    /// Ownership transfers.
    pub transfers: u64,
    /// Cross-tenant denials.
    pub cross_tenant_denials: u64,
    /// Compressed device bytes charged.
    pub used_bytes: u64,
    /// Quota in compressed device bytes.
    pub quota_bytes: u64,
    /// Quota headroom (`quota − used`, saturating).
    pub quota_headroom: u64,
    /// Uncompressed bytes represented.
    pub logical_bytes: u64,
    /// Live allocations.
    pub allocations: u64,
    /// Traffic counters.
    pub stats: AccessStats,
}

impl TenantRow {
    /// Effective compression ratio of the tenant's live footprint
    /// (`logical / used`; 1.0 when nothing is charged).
    pub fn effective_ratio(&self) -> f64 {
        if self.used_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.used_bytes as f64
    }
}

/// Registry of per-tenant telemetry. Registration and snapshots lock; the
/// returned [`TenantTelemetry`] handles are updated lock-free.
#[derive(Debug, Default)]
pub struct TelemetryRegistry {
    tenants: Mutex<Vec<(String, Arc<TenantTelemetry>)>>,
}

impl TelemetryRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the tenant list, recovering from poisoning (telemetry is
    /// plain data; a panicked registrant leaves it structurally valid).
    fn list(&self) -> MutexGuard<'_, Vec<(String, Arc<TenantTelemetry>)>> {
        match self.tenants.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a tenant and returns its metric handle.
    pub fn register(&self, name: &str) -> Arc<TenantTelemetry> {
        let telemetry = Arc::new(TenantTelemetry::default());
        self.list().push((name.to_string(), Arc::clone(&telemetry)));
        telemetry
    }

    /// Registered tenant count.
    pub fn len(&self) -> usize {
        self.list().len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.list().is_empty()
    }

    /// One row per tenant, in registration order.
    pub fn snapshot(&self) -> Vec<TenantRow> {
        self.list()
            .iter()
            .map(|(name, t)| {
                let used = t.used_bytes.get();
                let quota = t.quota_bytes.get();
                TenantRow {
                    name: name.clone(),
                    allocs: t.allocs.get(),
                    frees: t.frees.get(),
                    rejections: t.rejections.get(),
                    demotions: t.demotions.get(),
                    transfers: t.transfers.get(),
                    cross_tenant_denials: t.cross_tenant_denials.get(),
                    used_bytes: used,
                    quota_bytes: quota,
                    quota_headroom: quota.saturating_sub(used),
                    logical_bytes: t.logical_bytes.get(),
                    allocations: t.allocations.get(),
                    stats: t.stats(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn record_stats_round_trips() {
        let t = TenantTelemetry::default();
        let delta = AccessStats {
            reads_device_only: 1,
            reads_with_buddy: 2,
            writes_device_only: 3,
            writes_with_buddy: 4,
            device_sectors: 5,
            buddy_sectors: 6,
            retargets: 7,
            moved_sectors: 8,
        };
        t.record_stats(&delta);
        t.record_stats(&delta);
        let mut twice = AccessStats::default();
        twice.merge(&delta);
        twice.merge(&delta);
        assert_eq!(t.stats(), twice);
    }

    #[test]
    fn snapshot_reports_headroom_and_ratio() {
        let registry = TelemetryRegistry::new();
        let t = registry.register("tenant-a");
        t.quota_bytes.set(1000);
        t.used_bytes.set(250);
        t.logical_bytes.set(500);
        let rows = registry.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "tenant-a");
        assert_eq!(rows[0].quota_headroom, 750);
        assert!((rows[0].effective_ratio() - 2.0).abs() < 1e-9);
        // Over-quota states saturate instead of wrapping.
        t.used_bytes.set(2000);
        assert_eq!(registry.snapshot()[0].quota_headroom, 0);
    }

    #[test]
    fn updates_from_many_threads_all_land() {
        let registry = TelemetryRegistry::new();
        let t = registry.register("hot");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        t.allocs.incr();
                    }
                });
            }
        });
        assert_eq!(registry.snapshot()[0].allocs, 40_000);
    }
}
